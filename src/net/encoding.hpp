#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/simulator.hpp"

namespace katric::net {

/// Delta–varint compression for sorted vertex-ID lists — the classic
/// volume-reduction technique for neighborhood exchange. Sorted IDs have
/// small gaps exactly when the graph has ID locality, so compression and
/// CETRIC's contraction profit from the same structure (and the compressed
/// global phase shows it: see the compression ablation bench).
///
/// Wire layout: the byte stream (first value varint-encoded, then the gaps)
/// packed little-endian into 64-bit words; the element count travels in the
/// record header, the word count is implicit in the record length.

/// Appends the encoding of `values` (strictly increasing) to `out`.
/// Returns the number of words appended.
std::size_t encode_sorted(std::span<const std::uint64_t> values, WordVec& out);

/// Decodes `count` values from `words` into `out` (cleared first).
void decode_sorted(std::span<const std::uint64_t> words, std::size_t count,
                   std::vector<std::uint64_t>& out);

/// Exact number of words encode_sorted would append (for sizing decisions).
[[nodiscard]] std::size_t encoded_words(std::span<const std::uint64_t> values);

/// Non-throwing variant of decode_sorted for untrusted buffers: returns
/// false (leaving `out` cleared) on a truncated or overlong varint stream
/// instead of tripping KATRIC_ASSERT. Never reads past `words`. The hardened
/// message layer verifies frame checksums before decoding, so the throwing
/// decode_sorted stays the hot path; this is the belt to that suspender (and
/// the fuzz target).
[[nodiscard]] bool try_decode_sorted(std::span<const std::uint64_t> words,
                                     std::size_t count, std::vector<std::uint64_t>& out);

/// ---------------------------------------------------------------------------
/// Physical frame format of the hardened message layer (src/fault/). When a
/// run is hardened, every cross-rank payload send travels as
///
///   [frame_id, payload_words, checksum, payload...]
///
/// where checksum covers (frame_id, src, dest, tag, payload length, payload
/// words) via the library's hash64 chain — an xxhash-style integrity check,
/// not a cryptographic MAC. Truncation is caught by the length word,
/// corruption (including a flip inside the header itself) by the checksum;
/// duplicated frames are recognized by frame_id at the receiver.

inline constexpr std::size_t kFrameHeaderWords = 3;

/// Integrity checksum over the frame's identity and content.
[[nodiscard]] std::uint64_t frame_checksum(std::uint64_t frame_id, std::uint32_t src,
                                           std::uint32_t dest, int tag,
                                           std::span<const std::uint64_t> payload);

/// Builds the framed buffer: header + copy of `payload`.
[[nodiscard]] WordVec frame_payload(std::uint64_t frame_id, std::uint32_t src,
                                    std::uint32_t dest, int tag,
                                    std::span<const std::uint64_t> payload);

enum class FrameStatus : std::uint8_t {
    kOk = 0,
    kTruncated,  ///< buffer shorter than header + declared payload length
    kCorrupt,    ///< checksum mismatch (bit flip in header or payload)
};

/// A verified view into a framed buffer. `payload` aliases the input words
/// and is only meaningful when status == kOk.
struct FrameView {
    FrameStatus status = FrameStatus::kTruncated;
    std::uint64_t frame_id = 0;
    std::span<const std::uint64_t> payload;
};

/// Verifies a received framed buffer against the channel identity the
/// receiver knows out of band. Never reads out of bounds on any input.
[[nodiscard]] FrameView verify_frame(std::span<const std::uint64_t> words,
                                     std::uint32_t src, std::uint32_t dest, int tag);

/// ZigZag mapping for the signed per-vertex delta records of the streaming
/// LCC flush: the sign moves into the LSB, so small-magnitude deltas of
/// either sign encode to small words (−1 → 1, 1 → 2, −2 → 3, …) and stay
/// friendly to any downstream varint packing.
[[nodiscard]] constexpr std::uint64_t encode_signed(std::int64_t value) noexcept {
    return (static_cast<std::uint64_t>(value) << 1)
           ^ static_cast<std::uint64_t>(value >> 63);
}

[[nodiscard]] constexpr std::int64_t decode_signed(std::uint64_t word) noexcept {
    return static_cast<std::int64_t>((word >> 1) ^ (0 - (word & 1)));
}

}  // namespace katric::net
