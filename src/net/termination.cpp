#include "net/termination.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace katric::net {

TerminationDetector::TerminationDetector(Rank num_ranks, int report_tag, int verdict_tag)
    : num_ranks_(num_ranks),
      report_tag_(report_tag),
      verdict_tag_(verdict_tag),
      sent_(num_ranks, 0),
      received_(num_ranks, 0),
      last_reported_sent_(num_ranks, 0),
      last_reported_received_(num_ranks, 0),
      reported_once_(num_ranks, false),
      terminated_(num_ranks, false),
      latest_sent_(num_ranks, 0),
      latest_received_(num_ranks, 0),
      heard_from_(num_ranks, false) {}

void TerminationDetector::on_idle(RankHandle& self) {
    const Rank r = self.rank();
    if (terminated_[r]) { return; }
    // Report unconditionally: the coordinator needs a full *unchanged* wave
    // to confirm, so even idle PEs must keep answering until the verdict.
    last_reported_sent_[r] = sent_[r];
    last_reported_received_[r] = received_[r];
    reported_once_[r] = true;
    if (r == 0) {
        latest_sent_[0] = sent_[0];
        latest_received_[0] = received_[0];
        heard_from_[0] = true;
        coordinator_check(self);
    } else {
        self.send(0, WordVec{sent_[r], received_[r]}, report_tag_);
    }
}

bool TerminationDetector::handle(RankHandle& self, Rank src, int tag,
                                 std::span<const std::uint64_t> payload) {
    const Rank r = self.rank();
    if (tag == report_tag_) {
        KATRIC_ASSERT(r == 0);
        KATRIC_ASSERT(payload.size() == 2);
        latest_sent_[src] = payload[0];
        latest_received_[src] = payload[1];
        heard_from_[src] = true;
        coordinator_check(self);
        return true;
    }
    if (tag == verdict_tag_) {
        terminated_[r] = true;
        return true;
    }
    return false;
}

void TerminationDetector::coordinator_check(RankHandle& self) {
    if (verdict_sent_) { return; }
    if (!std::all_of(heard_from_.begin(), heard_from_.end(), [](bool h) { return h; })) {
        return;
    }
    std::uint64_t total_sent = 0;
    std::uint64_t total_received = 0;
    for (Rank r = 0; r < num_ranks_; ++r) {
        total_sent += latest_sent_[r];
        total_received += latest_received_[r];
    }
    ++waves_;
    // Four-counter criterion: two consecutive waves agree and balance. On a
    // single PE no message can cross between waves (the idle hook only runs
    // on a drained event queue), so one balanced snapshot suffices.
    if ((num_ranks_ == 1 && total_sent == total_received)
        || (have_previous_snapshot_ && total_sent == total_received
            && total_sent == previous_total_sent_
            && total_received == previous_total_received_)) {
        verdict_sent_ = true;
        terminated_[0] = true;
        for (Rank r = 1; r < num_ranks_; ++r) { self.send(r, WordVec{1}, verdict_tag_); }
        return;
    }
    previous_total_sent_ = total_sent;
    previous_total_received_ = total_received;
    have_previous_snapshot_ = true;
    // Start the next wave: forget this one's reports.
    std::fill(heard_from_.begin(), heard_from_.end(), false);
}

bool TerminationDetector::all_terminated() const {
    return std::all_of(terminated_.begin(), terminated_.end(), [](bool t) { return t; });
}

}  // namespace katric::net
