#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/types.hpp"
#include "net/metrics.hpp"
#include "net/network_config.hpp"

namespace katric::net {

using Rank = graph::Rank;
using WordVec = std::vector<std::uint64_t>;

/// Raised when a PE's buffered communication data exceeds the configured
/// per-PE memory budget — the simulated equivalent of the out-of-memory
/// crashes the paper reports for TriC's static single-shot buffering.
class OomError : public std::runtime_error {
public:
    OomError(Rank rank, std::uint64_t words);
    [[nodiscard]] Rank rank() const noexcept { return rank_; }
    [[nodiscard]] std::uint64_t words() const noexcept { return words_; }

private:
    Rank rank_;
    std::uint64_t words_;
};

class Simulator;

/// Per-PE facade handed to algorithm callbacks: the only way algorithm code
/// can touch the machine. Mirrors the discipline of an MPI rank — a PE sees
/// its own rank, the PE count, and explicit message passing; nothing else.
class RankHandle {
public:
    RankHandle(Simulator& sim, Rank rank) noexcept : sim_(&sim), rank_(rank) {}

    [[nodiscard]] Rank rank() const noexcept { return rank_; }
    [[nodiscard]] Rank size() const noexcept;
    [[nodiscard]] const NetworkConfig& config() const noexcept;

    /// Non-blocking send: charges the sender α + β·ℓ (single-ported
    /// injection) and schedules delivery. Self-sends are delivered through
    /// the same path (with zero network charge) so algorithms need no
    /// special case.
    void send(Rank dest, WordVec payload, int tag = 0);

    /// Size-only send: identical timing, ordering, and metric charges to
    /// send()ing a `words`-long payload, but no payload is materialized —
    /// the delivered span is empty. O(1) instead of O(ℓ) on both ends; the
    /// basis of the warm engine's preprocessing-cost replay
    /// (core::charge_preprocessing), which needs the machine charges of an
    /// exchange without its data.
    void send_sized(Rank dest, std::uint64_t words, int tag = 0);

    /// Advances this PE's clock by ops elementary operations.
    void charge_ops(std::uint64_t ops);
    /// Advances this PE's clock by an explicit amount of seconds.
    void charge_seconds(double seconds);

    /// This PE's simulated clock.
    [[nodiscard]] double now() const noexcept;

    /// Reports the current amount of buffered outgoing data; updates the
    /// high-water mark and enforces the per-PE memory budget (throws
    /// OomError past the limit).
    void note_buffered_words(std::uint64_t current_words);

    [[nodiscard]] const RankMetrics& metrics() const noexcept;

private:
    Simulator* sim_;
    Rank rank_;
};

/// Deterministic discrete-event simulator of a p-PE message-passing machine.
///
/// Execution model (DESIGN.md §3): a *phase* (superstep) runs every rank's
/// start function, then delivers messages in global arrival order until
/// quiescence — handlers may send further messages (aggregation proxies,
/// replies). An optional idle hook runs when the event queue drains, so
/// message queues can flush residual buffers; the phase ends when an idle
/// round generates no new traffic. A closing barrier lifts all clocks to the
/// maximum plus α·⌈log₂ p⌉.
///
/// Determinism: ties in arrival time break by send sequence number, and
/// per-channel FIFO follows from per-sender clock monotonicity.
class Simulator {
public:
    using MessageHandler =
        std::function<void(RankHandle&, Rank src, int tag, std::span<const std::uint64_t>)>;
    using RankFn = std::function<void(RankHandle&)>;

    Simulator(Rank num_ranks, NetworkConfig config);

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /// Runs one superstep; returns its duration in simulated seconds.
    double run_phase(const std::string& name, const RankFn& start,
                     const MessageHandler& on_message, const RankFn& on_idle = {});

    [[nodiscard]] Rank num_ranks() const noexcept { return num_ranks_; }
    [[nodiscard]] const NetworkConfig& config() const noexcept { return config_; }
    /// Global simulated time (the last barrier).
    [[nodiscard]] double time() const noexcept { return barrier_time_; }

    [[nodiscard]] std::span<const RankMetrics> rank_metrics() const noexcept {
        return metrics_;
    }
    [[nodiscard]] std::span<const PhaseRecord> phases() const noexcept { return phases_; }

    /// When enabled, each PhaseRecord additionally captures per-rank busy
    /// clocks and per-rank metric deltas for that superstep (the raw data
    /// behind per-rank trace lanes and per-phase comm breakdowns). Off by
    /// default: the snapshots cost O(p) copies per superstep.
    void record_phase_details(bool enabled) { record_phase_details_ = enabled; }
    [[nodiscard]] bool phase_details_recorded() const noexcept {
        return record_phase_details_;
    }

private:
    friend class RankHandle;

    struct Event {
        double arrival;
        std::uint64_t seq;
        Rank src;
        Rank dest;
        int tag;
        /// Charged message length in words. Equals payload.size() for real
        /// sends; size-only sends carry the length with an empty payload.
        std::uint64_t words;
        WordVec payload;
    };
    struct EventLater {
        bool operator()(const Event& a, const Event& b) const noexcept {
            return a.arrival != b.arrival ? a.arrival > b.arrival : a.seq > b.seq;
        }
    };

    void send_from(Rank src, Rank dest, int tag, WordVec payload);
    void send_sized_from(Rank src, Rank dest, int tag, std::uint64_t words);
    void enqueue(Rank src, Rank dest, int tag, std::uint64_t words, WordVec payload);
    void deliver_until_quiescent(const MessageHandler& on_message, const RankFn& on_idle);

    NetworkConfig config_;
    Rank num_ranks_;
    std::vector<double> clocks_;
    std::vector<RankMetrics> metrics_;
    std::priority_queue<Event, std::vector<Event>, EventLater> events_;
    std::uint64_t next_seq_ = 0;
    double barrier_time_ = 0.0;
    std::vector<PhaseRecord> phases_;
    bool record_phase_details_ = false;
};

}  // namespace katric::net
