#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "error.hpp"
#include "fault/injector.hpp"
#include "graph/types.hpp"
#include "net/metrics.hpp"
#include "net/network_config.hpp"

namespace katric::net {

using Rank = graph::Rank;
using WordVec = std::vector<std::uint64_t>;

/// Raised when a PE's buffered communication data exceeds the configured
/// per-PE memory budget — the simulated equivalent of the out-of-memory
/// crashes the paper reports for TriC's static single-shot buffering.
class OomError : public std::runtime_error {
public:
    OomError(Rank rank, std::uint64_t words);
    [[nodiscard]] Rank rank() const noexcept { return rank_; }
    [[nodiscard]] std::uint64_t words() const noexcept { return words_; }

private:
    Rank rank_;
    std::uint64_t words_;
};

/// Raised by the hardened message layer when detection/recovery cannot
/// transparently absorb a fault: checksum failures past the retransmission
/// budget (kCorrupt), lost messages or a wedged superstep (kTimeout), a rank
/// that stopped participating (kRankLost). Follows the OomError pattern —
/// thrown out of the counting run, caught at the Engine boundary, reported
/// as a typed Error in Domain::kNet. Never results in a divergent count.
class FaultError : public std::runtime_error {
public:
    FaultError(NetError code, const std::string& detail);
    [[nodiscard]] NetError code() const noexcept { return code_; }

private:
    NetError code_;
};

/// Raised at a superstep boundary when the query's CancelToken has expired
/// (deadline passed or explicit cancel). Cooperative: a superstep always
/// completes; cancellation lands between supersteps.
class CancelledError : public std::runtime_error {
public:
    CancelledError();
};

/// Arms the hardened message layer on a Simulator. All pointers are borrowed
/// and must outlive the run; each may be null independently (e.g. harden
/// framing with no injector = checksum/dedup machinery only, the overhead
/// bench's hardened mode).
struct HardenOptions {
    /// Frame/checksum/retransmit the payload path. Off = only the superstep
    /// boundary checks (cancel token, phase timeout) are armed — what a
    /// deadline without --harden wants: zero cost on the message path.
    bool frame = true;
    /// Deterministic fault oracle; null = no injection.
    const fault::FaultInjector* injector = nullptr;
    /// Counter sink; null = don't count.
    fault::FaultStats* stats = nullptr;
    /// Cooperative cancellation, checked at each superstep boundary.
    const fault::CancelToken* cancel = nullptr;
    /// Retransmission budget per frame; 0 = fail-fast on first detection.
    std::uint32_t max_retries = 3;
    /// Simulated-seconds ceiling per superstep; 0 = no timeout. A phase
    /// whose makespan exceeds it throws FaultError(kTimeout) instead of
    /// silently absorbing a wedged link into the total.
    double phase_timeout = 0.0;
};

class Simulator;

/// Per-PE facade handed to algorithm callbacks: the only way algorithm code
/// can touch the machine. Mirrors the discipline of an MPI rank — a PE sees
/// its own rank, the PE count, and explicit message passing; nothing else.
class RankHandle {
public:
    RankHandle(Simulator& sim, Rank rank) noexcept : sim_(&sim), rank_(rank) {}

    [[nodiscard]] Rank rank() const noexcept { return rank_; }
    [[nodiscard]] Rank size() const noexcept;
    [[nodiscard]] const NetworkConfig& config() const noexcept;

    /// Non-blocking send: charges the sender α + β·ℓ (single-ported
    /// injection) and schedules delivery. Self-sends are delivered through
    /// the same path (with zero network charge) so algorithms need no
    /// special case.
    void send(Rank dest, WordVec payload, int tag = 0);

    /// Size-only send: identical timing, ordering, and metric charges to
    /// send()ing a `words`-long payload, but no payload is materialized —
    /// the delivered span is empty. O(1) instead of O(ℓ) on both ends; the
    /// basis of the warm engine's preprocessing-cost replay
    /// (core::charge_preprocessing), which needs the machine charges of an
    /// exchange without its data.
    void send_sized(Rank dest, std::uint64_t words, int tag = 0);

    /// Advances this PE's clock by ops elementary operations.
    void charge_ops(std::uint64_t ops);
    /// Advances this PE's clock by an explicit amount of seconds.
    void charge_seconds(double seconds);

    /// This PE's simulated clock.
    [[nodiscard]] double now() const noexcept;

    /// Reports the current amount of buffered outgoing data; updates the
    /// high-water mark and enforces the per-PE memory budget (throws
    /// OomError past the limit).
    void note_buffered_words(std::uint64_t current_words);

    [[nodiscard]] const RankMetrics& metrics() const noexcept;

private:
    Simulator* sim_;
    Rank rank_;
};

/// Deterministic discrete-event simulator of a p-PE message-passing machine.
///
/// Execution model (DESIGN.md §3): a *phase* (superstep) runs every rank's
/// start function, then delivers messages in global arrival order until
/// quiescence — handlers may send further messages (aggregation proxies,
/// replies). An optional idle hook runs when the event queue drains, so
/// message queues can flush residual buffers; the phase ends when an idle
/// round generates no new traffic. A closing barrier lifts all clocks to the
/// maximum plus α·⌈log₂ p⌉.
///
/// Determinism: ties in arrival time break by send sequence number, and
/// per-channel FIFO follows from per-sender clock monotonicity.
class Simulator {
public:
    using MessageHandler =
        std::function<void(RankHandle&, Rank src, int tag, std::span<const std::uint64_t>)>;
    using RankFn = std::function<void(RankHandle&)>;

    Simulator(Rank num_ranks, NetworkConfig config);

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /// Runs one superstep; returns its duration in simulated seconds.
    double run_phase(const std::string& name, const RankFn& start,
                     const MessageHandler& on_message, const RankFn& on_idle = {});

    [[nodiscard]] Rank num_ranks() const noexcept { return num_ranks_; }
    [[nodiscard]] const NetworkConfig& config() const noexcept { return config_; }
    /// Global simulated time (the last barrier).
    [[nodiscard]] double time() const noexcept { return barrier_time_; }

    [[nodiscard]] std::span<const RankMetrics> rank_metrics() const noexcept {
        return metrics_;
    }
    [[nodiscard]] std::span<const PhaseRecord> phases() const noexcept { return phases_; }

    /// When enabled, each PhaseRecord additionally captures per-rank busy
    /// clocks and per-rank metric deltas for that superstep (the raw data
    /// behind per-rank trace lanes and per-phase comm breakdowns). Off by
    /// default: the snapshots cost O(p) copies per superstep.
    void record_phase_details(bool enabled) { record_phase_details_ = enabled; }
    [[nodiscard]] bool phase_details_recorded() const noexcept {
        return record_phase_details_;
    }

    /// Turns on the hardened message layer: every cross-rank payload send is
    /// framed with [frame_id, length, checksum] (encoding.hpp), verified and
    /// deduplicated at delivery, retransmitted with exponential backoff on
    /// detected loss or corruption, and every superstep boundary checks the
    /// injector's crash/stall schedule, the cancel token, and the phase
    /// timeout. Off (the default) the simulator is bit-identical to the
    /// unhardened build: the only added cost on every hot path is one null
    /// check on fault_ — the same discipline obs uses.
    void harden(const HardenOptions& options);
    [[nodiscard]] bool hardened() const noexcept { return fault_ != nullptr; }

private:
    friend class RankHandle;

    struct Event {
        double arrival;
        std::uint64_t seq;
        Rank src;
        Rank dest;
        int tag;
        /// Charged message length in words. Equals payload.size() for real
        /// sends; size-only sends carry the length with an empty payload.
        std::uint64_t words;
        WordVec payload;
        /// Hardened-path frame id; 0 = unframed (self-send, size-only send,
        /// or hardening off). The network's own knowledge of which send this
        /// is — corruption mutates the payload buffer, never this.
        std::uint64_t frame = 0;
    };
    struct EventLater {
        bool operator()(const Event& a, const Event& b) const noexcept {
            return a.arrival != b.arrival ? a.arrival > b.arrival : a.seq > b.seq;
        }
    };

    void send_from(Rank src, Rank dest, int tag, WordVec payload);
    void send_sized_from(Rank src, Rank dest, int tag, std::uint64_t words);
    void enqueue(Rank src, Rank dest, int tag, std::uint64_t words, WordVec payload);
    void deliver_until_quiescent(const MessageHandler& on_message, const RankFn& on_idle);

    /// Retained copy of a hardened in-flight frame, kept until its verified
    /// delivery so loss and corruption can be repaired by retransmission.
    struct InFlightFrame {
        Rank src;
        Rank dest;
        int tag;
        WordVec framed;          ///< pristine framed buffer (header + payload)
        std::uint32_t attempts;  ///< delivery attempts so far (1 = first send)
    };

    /// All hardened-path state, allocated only when harden() is called so
    /// the disabled path stays a single null check.
    struct FaultState {
        HardenOptions opts;
        std::uint64_t next_frame_id = 0;
        std::uint32_t superstep = 0;
        /// frame_id → retained frame; std::map for a deterministic
        /// retransmission sweep order.
        std::map<std::uint64_t, InFlightFrame> in_flight;
        /// Verified-delivered frame ids this phase (idempotent re-delivery).
        std::unordered_set<std::uint64_t> delivered;
    };

    /// Charges the sender and pushes the retained frame's event(s) through
    /// the injector: 0 (drop), 1, or 2 (duplicate) events, possibly with a
    /// mutated copy of the buffer (truncate/bitflip) or a perturbed arrival
    /// (reorder/delay). Used by both the first send and retransmissions.
    void push_hardened(std::uint64_t frame_id);
    /// Re-sends a frame after detected loss/corruption, charging the sender
    /// the backoff α·2^attempt on top of the normal injection cost. Throws
    /// FaultError when the retry budget is exhausted.
    void retransmit(std::uint64_t frame_id, NetError exhausted_as);
    /// Verified-delivery bookkeeping for one hardened event. Returns the
    /// payload span to hand the handler, or nullopt when the event must be
    /// suppressed (duplicate) — retransmission on corruption happens inside.
    std::optional<std::span<const std::uint64_t>> receive_hardened(const Event& event);

    NetworkConfig config_;
    Rank num_ranks_;
    std::vector<double> clocks_;
    std::vector<RankMetrics> metrics_;
    std::priority_queue<Event, std::vector<Event>, EventLater> events_;
    std::uint64_t next_seq_ = 0;
    double barrier_time_ = 0.0;
    std::vector<PhaseRecord> phases_;
    bool record_phase_details_ = false;
    std::unique_ptr<FaultState> fault_;
};

}  // namespace katric::net
