#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/simulator.hpp"

namespace katric::net {

/// Collective operations executed on the simulated machine. Each call runs
/// one phase (superstep) and records its timing under the given name.

/// Personalized all-to-all exchange. sends[src][dest] is the payload src
/// contributes for dest; returns recv where recv[dest][src] is that payload.
/// In dense mode every PE sends p−1 messages, including empty ones — the
/// simple exchange the paper uses for the ghost-degree preprocessing. In
/// sparse mode only non-empty payloads travel (Hoefler-style sparse
/// collective): cheaper when the communication graph is sparse, but the
/// dense variant is more robust under skewed degree distributions
/// (Section IV-D).
[[nodiscard]] std::vector<std::vector<WordVec>> all_to_all(
    Simulator& sim, std::vector<std::vector<WordVec>> sends, bool sparse,
    const std::string& phase_name);

/// Size-only replay of all_to_all: charges the machine exactly as an
/// all_to_all whose payload sizes are words[src][dest] — same offset
/// schedule, same timing, same message/volume metrics — but ships no data
/// and delivers nothing. O(p²) host work instead of O(exchange volume);
/// this is what lets a warm engine replay its preprocessing charges per
/// query without serializing on payload materialization
/// (core::charge_preprocessing). Metric identity with the real collective
/// holds because all_to_all's receive handler only copies payload bytes —
/// it charges no ops.
void charge_all_to_all(Simulator& sim,
                       const std::vector<std::vector<std::uint64_t>>& words, bool sparse,
                       const std::string& phase_name);

/// Binomial-tree all-reduce (sum) of one 64-bit value per PE: reduce to rank
/// 0 along the tree, then broadcast back. Works for any p ≥ 1. Returns the
/// global sum (identical on every PE; verified internally).
[[nodiscard]] std::uint64_t allreduce_sum(Simulator& sim,
                                          const std::vector<std::uint64_t>& values,
                                          const std::string& phase_name);

}  // namespace katric::net
