#include "net/indirection.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/bits.hpp"

namespace katric::net {

GridRouter::GridRouter(Rank num_ranks) : num_ranks_(num_ranks) {
    KATRIC_ASSERT(num_ranks >= 1);
    // ⌊√p + ½⌋ columns — round to the nearest integer (paper, Section IV-B).
    const auto root = katric::isqrt(num_ranks);
    // isqrt gives ⌊√p⌋; adding ½ rounds up when the fractional part ≥ ½,
    // i.e. when p ≥ root² + root + ¼ ⇔ p > root² + root − 1 (integers).
    columns_ = static_cast<Rank>(root);
    if (static_cast<std::uint64_t>(num_ranks) >= root * root + root + 1) { ++columns_; }
    if (columns_ == 0) { columns_ = 1; }
    rows_ = static_cast<Rank>(katric::div_ceil(num_ranks, columns_));
}

Rank GridRouter::first_hop(Rank src, Rank final_dest) const {
    KATRIC_ASSERT(src < num_ranks_ && final_dest < num_ranks_);
    if (src == final_dest) { return final_dest; }
    const auto [i, j] = coords(src);
    const auto [k, l] = coords(final_dest);
    Rank proxy;
    if (exists(i, l)) {
        proxy = id(i, l);
    } else {
        // src sits in the partial last row and column l is beyond its width:
        // transpose the last row — src becomes the rank in row j of the
        // appended right-hand column — and pick the proxy along *that* row.
        KATRIC_ASSERT_MSG(exists(j, l), "transposed proxy (" << j << ',' << l
                                                             << ") must exist for p="
                                                             << num_ranks_);
        proxy = id(j, l);
    }
    if (proxy == src || proxy == final_dest) { return final_dest; }
    return proxy;
}

TwoLevelRouter::TwoLevelRouter(Rank num_ranks, Rank node_size)
    : num_ranks_(num_ranks), node_size_(std::max<Rank>(node_size, 1)) {
    KATRIC_ASSERT(num_ranks >= 1);
}

Rank TwoLevelRouter::gateway(Rank src_node, Rank dst_node) const {
    const Rank node_begin = src_node * node_size_;
    const Rank node_end = std::min<Rank>(node_begin + node_size_, num_ranks_);
    const Rank members = node_end - node_begin;
    // Spread destination nodes round-robin over the node's members so no
    // single PE funnels all outbound traffic.
    return node_begin + dst_node % members;
}

Rank TwoLevelRouter::first_hop(Rank src, Rank final_dest) const {
    KATRIC_ASSERT(src < num_ranks_ && final_dest < num_ranks_);
    if (src == final_dest) { return final_dest; }
    const Rank src_node = node_of(src);
    const Rank dst_node = node_of(final_dest);
    if (src_node == dst_node) { return final_dest; }
    const Rank gw = gateway(src_node, dst_node);
    return gw == src ? final_dest : gw;
}

}  // namespace katric::net
