#include "net/message_queue.hpp"

#include "util/assert.hpp"

namespace katric::net {

MessageQueue::MessageQueue(std::uint64_t threshold_words, const Router& router, int tag,
                           bool epoch_stamped)
    : threshold_(threshold_words), router_(&router), tag_(tag),
      epoch_stamped_(epoch_stamped) {
    KATRIC_ASSERT(threshold_words > 0);
}

void MessageQueue::post(RankHandle& self, Rank final_dest,
                        std::span<const std::uint64_t> words) {
    KATRIC_ASSERT_MSG(final_dest != self.rank(), "queue post to self on rank " << self.rank());
    const Rank hop = router_->first_hop(self.rank(), final_dest);
    WordVec& buffer = buffers_[hop];
    buffer.push_back(final_dest);
    buffer.push_back(words.size());
    if (epoch_stamped_) { buffer.push_back(epoch_); }
    buffer.insert(buffer.end(), words.begin(), words.end());
    buffered_words_ += header_words() + words.size();
    self.note_buffered_words(buffered_words_);
    if (buffered_words_ > threshold_) { flush(self); }
}

void MessageQueue::flush(RankHandle& self) {
    for (auto& [dest, buffer] : buffers_) {
        if (!buffer.empty()) { self.send(dest, std::move(buffer), tag_); }
    }
    buffers_.clear();
    buffered_words_ = 0;
    self.note_buffered_words(0);
}

void MessageQueue::begin_epoch(std::uint64_t epoch) {
    KATRIC_ASSERT_MSG(epoch_stamped_, "begin_epoch on a non-epoch-stamped queue");
    KATRIC_ASSERT_MSG(buffered_words_ == 0,
                      "batch boundary crossed with " << buffered_words_
                                                     << " words still buffered");
    epoch_ = epoch;
}

std::size_t MessageQueue::handle(RankHandle& self, std::span<const std::uint64_t> payload,
                                 const Deliver& deliver) {
    std::size_t delivered = 0;
    std::size_t index = 0;
    const std::size_t header = header_words();
    while (index < payload.size()) {
        KATRIC_ASSERT_MSG(index + header <= payload.size(), "truncated record header");
        const auto final_dest = static_cast<Rank>(payload[index]);
        const auto length = static_cast<std::size_t>(payload[index + 1]);
        if (epoch_stamped_) {
            KATRIC_ASSERT_MSG(payload[index + 2] == epoch_,
                              "record from epoch " << payload[index + 2]
                                                   << " crossed into epoch " << epoch_);
        }
        KATRIC_ASSERT_MSG(index + header + length <= payload.size(),
                          "truncated record body");
        const auto record = payload.subspan(index + header, length);
        if (final_dest == self.rank()) {
            deliver(self, record);
            ++delivered;
        } else {
            // Aggregation at the proxy: records for the same final column
            // destination coalesce in this queue's buffers.
            self.charge_ops(length);  // copy cost of staging the record
            post(self, final_dest, record);
        }
        index += header + length;
    }
    return delivered;
}

}  // namespace katric::net
