#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace katric::net {

/// Per-PE communication and compute counters. These are *exact*
/// combinatorial quantities — independent of the time model — and are the
/// basis of the paper's "sent messages" and "bottleneck volume" plots.
struct RankMetrics {
    std::uint64_t messages_sent = 0;
    std::uint64_t messages_received = 0;
    std::uint64_t words_sent = 0;
    std::uint64_t words_received = 0;
    std::uint64_t compute_ops = 0;
    /// High-water mark of buffered outgoing communication data (message
    /// queue buffers, static aggregation buffers).
    std::uint64_t peak_buffered_words = 0;

    void merge(const RankMetrics& other) noexcept;
};

/// Max over PEs of messages_sent — the paper's Fig. 5 middle row.
[[nodiscard]] std::uint64_t max_messages_sent(std::span<const RankMetrics> ranks) noexcept;
/// Max over PEs of words_sent — the paper's "bottleneck communication volume".
[[nodiscard]] std::uint64_t max_words_sent(std::span<const RankMetrics> ranks) noexcept;
[[nodiscard]] std::uint64_t total_words_sent(std::span<const RankMetrics> ranks) noexcept;
[[nodiscard]] std::uint64_t total_messages_sent(std::span<const RankMetrics> ranks) noexcept;
[[nodiscard]] std::uint64_t max_peak_buffered(std::span<const RankMetrics> ranks) noexcept;

/// Simulated timing of one superstep.
struct PhaseRecord {
    std::string name;
    double start_time = 0.0;
    double end_time = 0.0;  ///< after the closing barrier
    /// Per-rank detail, filled only when Simulator::record_phase_details is
    /// on (observability enabled): each rank's busy clock at phase end and
    /// the metric deltas it accrued during this superstep. Empty otherwise.
    std::vector<double> rank_busy_end;
    std::vector<RankMetrics> rank_delta;
    [[nodiscard]] double duration() const noexcept { return end_time - start_time; }
};

/// Sums the durations of all phases whose name matches exactly.
[[nodiscard]] double phase_time(std::span<const PhaseRecord> phases, const std::string& name);

/// True if `name` matches `pattern`: exact match, or — when the pattern ends
/// in '*' — a prefix match ("preprocessing*" matches "preprocessing" and
/// "preprocessing:exchange").
[[nodiscard]] bool phase_name_matches(const std::string& name, const std::string& pattern);

/// Sums the durations of all phases whose name matches the pattern
/// (phase_name_matches semantics). "*" sums everything.
[[nodiscard]] double phase_time_matching(std::span<const PhaseRecord> phases,
                                         const std::string& pattern);

/// One row of a fig7-style per-phase breakdown: all supersteps sharing a
/// group key, with their summed simulated time and communication totals.
struct PhaseAgg {
    std::string name;            ///< group key (see aggregate_phase_times)
    double seconds = 0.0;        ///< summed superstep durations
    std::size_t supersteps = 0;  ///< number of matching PhaseRecords
    std::uint64_t messages_sent = 0;  ///< summed over ranks and supersteps
    std::uint64_t words_sent = 0;     ///< (0 unless phase details recorded)
};

/// Groups supersteps into a per-phase breakdown, in first-appearance order.
/// The group key is the superstep name truncated at the first ':' or '/'
/// separator, so "preprocessing:exchange" and "preprocessing:apply" fold
/// into one "preprocessing" row while "local" stays its own row.
[[nodiscard]] std::vector<PhaseAgg> aggregate_phase_times(std::span<const PhaseRecord> phases);

}  // namespace katric::net
