#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace katric::net {

/// Per-PE communication and compute counters. These are *exact*
/// combinatorial quantities — independent of the time model — and are the
/// basis of the paper's "sent messages" and "bottleneck volume" plots.
struct RankMetrics {
    std::uint64_t messages_sent = 0;
    std::uint64_t messages_received = 0;
    std::uint64_t words_sent = 0;
    std::uint64_t words_received = 0;
    std::uint64_t compute_ops = 0;
    /// High-water mark of buffered outgoing communication data (message
    /// queue buffers, static aggregation buffers).
    std::uint64_t peak_buffered_words = 0;

    void merge(const RankMetrics& other) noexcept;
};

/// Max over PEs of messages_sent — the paper's Fig. 5 middle row.
[[nodiscard]] std::uint64_t max_messages_sent(std::span<const RankMetrics> ranks) noexcept;
/// Max over PEs of words_sent — the paper's "bottleneck communication volume".
[[nodiscard]] std::uint64_t max_words_sent(std::span<const RankMetrics> ranks) noexcept;
[[nodiscard]] std::uint64_t total_words_sent(std::span<const RankMetrics> ranks) noexcept;
[[nodiscard]] std::uint64_t total_messages_sent(std::span<const RankMetrics> ranks) noexcept;
[[nodiscard]] std::uint64_t max_peak_buffered(std::span<const RankMetrics> ranks) noexcept;

/// Simulated timing of one superstep.
struct PhaseRecord {
    std::string name;
    double start_time = 0.0;
    double end_time = 0.0;  ///< after the closing barrier
    [[nodiscard]] double duration() const noexcept { return end_time - start_time; }
};

/// Sums the durations of all phases whose name matches exactly.
[[nodiscard]] double phase_time(std::span<const PhaseRecord> phases, const std::string& name);

}  // namespace katric::net
