#include "net/collectives.hpp"

#include <utility>

#include "util/assert.hpp"

namespace katric::net {

namespace {
constexpr int kTagAllToAll = 1001;
constexpr int kTagReduce = 1002;
constexpr int kTagBroadcast = 1003;
}  // namespace

std::vector<std::vector<WordVec>> all_to_all(Simulator& sim,
                                             std::vector<std::vector<WordVec>> sends,
                                             bool sparse, const std::string& phase_name) {
    const Rank p = sim.num_ranks();
    KATRIC_ASSERT(sends.size() == p);
    std::vector<std::vector<WordVec>> recv(p, std::vector<WordVec>(p));

    sim.run_phase(
        phase_name,
        [&](RankHandle& self) {
            const Rank r = self.rank();
            KATRIC_ASSERT(sends[r].size() == p);
            recv[r][r] = std::move(sends[r][r]);
            // Offset schedule (r+1, r+2, …) staggers traffic so no PE is hit
            // by all senders at once — the usual all-to-all round-robin.
            for (Rank offset = 1; offset < p; ++offset) {
                const Rank dest = static_cast<Rank>((r + offset) % p);
                if (sparse && sends[r][dest].empty()) { continue; }
                self.send(dest, std::move(sends[r][dest]), kTagAllToAll);
            }
        },
        [&](RankHandle& self, Rank src, int tag, std::span<const std::uint64_t> payload) {
            KATRIC_ASSERT(tag == kTagAllToAll);
            recv[self.rank()][src].assign(payload.begin(), payload.end());
        });
    return recv;
}

void charge_all_to_all(Simulator& sim,
                       const std::vector<std::vector<std::uint64_t>>& words, bool sparse,
                       const std::string& phase_name) {
    const Rank p = sim.num_ranks();
    KATRIC_ASSERT(words.size() == p);
    sim.run_phase(
        phase_name,
        [&](RankHandle& self) {
            const Rank r = self.rank();
            KATRIC_ASSERT(words[r].size() == p);
            // The self-payload moves without a send in all_to_all — nothing
            // to charge here either.
            for (Rank offset = 1; offset < p; ++offset) {
                const Rank dest = static_cast<Rank>((r + offset) % p);
                if (sparse && words[r][dest] == 0) { continue; }
                self.send_sized(dest, words[r][dest], kTagAllToAll);
            }
        },
        [](RankHandle&, Rank, int tag, std::span<const std::uint64_t>) {
            KATRIC_ASSERT(tag == kTagAllToAll);
        });
}

std::uint64_t allreduce_sum(Simulator& sim, const std::vector<std::uint64_t>& values,
                            const std::string& phase_name) {
    const Rank p = sim.num_ranks();
    KATRIC_ASSERT(values.size() == p);

    // Binomial tree: children of r are r+d for d = 1,2,4,… while r % 2d == 0
    // and r+d < p; the parent of r ≠ 0 is r − lowbit(r).
    std::vector<std::uint64_t> acc(values);
    std::vector<int> pending(p, 0);
    std::vector<std::uint64_t> result(p, 0);
    std::vector<bool> done(p, false);
    for (Rank r = 0; r < p; ++r) {
        for (Rank d = 1; r + d < p && r % (2 * d) == 0; d *= 2) { ++pending[r]; }
    }
    auto parent = [](Rank r) { return static_cast<Rank>(r - (r & (~r + 1u))); };
    auto forward_down = [&](RankHandle& self) {
        const Rank r = self.rank();
        result[r] = acc[r];
        done[r] = true;
        for (Rank d = 1; r + d < p && r % (2 * d) == 0; d *= 2) {
            self.send(static_cast<Rank>(r + d), WordVec{acc[r]}, kTagBroadcast);
        }
    };

    if (p == 1) { return values[0]; }

    sim.run_phase(
        phase_name,
        [&](RankHandle& self) {
            const Rank r = self.rank();
            if (pending[r] == 0 && r != 0) {
                self.send(parent(r), WordVec{acc[r]}, kTagReduce);
            }
        },
        [&](RankHandle& self, Rank /*src*/, int tag,
            std::span<const std::uint64_t> payload) {
            const Rank r = self.rank();
            KATRIC_ASSERT(payload.size() == 1);
            if (tag == kTagReduce) {
                acc[r] += payload[0];
                self.charge_ops(1);
                if (--pending[r] == 0) {
                    if (r == 0) {
                        forward_down(self);  // reduction complete; broadcast
                    } else {
                        self.send(parent(r), WordVec{acc[r]}, kTagReduce);
                    }
                }
            } else {
                KATRIC_ASSERT(tag == kTagBroadcast);
                acc[r] = payload[0];
                forward_down(self);
            }
        });

    for (Rank r = 0; r < p; ++r) {
        KATRIC_ASSERT_MSG(done[r], "allreduce did not reach rank " << r);
        KATRIC_ASSERT_MSG(result[r] == result[0], "allreduce results disagree");
    }
    return result[0];
}

}  // namespace katric::net
