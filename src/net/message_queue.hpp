#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>

#include "net/indirection.hpp"
#include "net/simulator.hpp"

namespace katric::net {

/// The dynamically buffered message queue of Section IV-A — the paper's
/// "asynchronous sparse all-to-all" building block, combined with the
/// indirect routing of Section IV-B through a pluggable Router.
///
/// Each PE keeps a hash map of dynamic buffers B_j, one per physical
/// communication partner (≤ p direct, ≤ ~2√p with the grid router). post()
/// appends a logical record; once the total buffered volume B = Σ|B_j|
/// exceeds the threshold δ, all buffers are handed to the runtime as
/// non-blocking sends (double buffering: the algorithm keeps filling fresh
/// buffers while the old ones are in flight — in the simulator this shows up
/// as the sender being charged injection time only). Setting δ ∈ O(|E_i|)
/// bounds per-PE memory by the local input size; the high-water mark is
/// tracked through RankHandle::note_buffered_words, which enforces the
/// configured memory budget.
///
/// Wire format of a physical payload: a sequence of records
///   [final_dest, record_len, word₀ … word_{len−1}]
/// (epoch-stamped queues insert the epoch between the header and the body:
/// [final_dest, record_len, epoch, word₀ …]). Records whose final_dest is
/// not the receiving PE are aggregation traffic for a proxy, which re-posts
/// them into its own queue (second hop).
class MessageQueue {
public:
    /// threshold_words = δ. The router reference must outlive the queue.
    /// With epoch_stamped = true every record carries the queue's current
    /// epoch in its header (streaming batch attribution, see begin_epoch).
    MessageQueue(std::uint64_t threshold_words, const Router& router, int tag,
                 bool epoch_stamped = false);

    /// Enqueues one logical record for final_dest; flushes if B > δ.
    void post(RankHandle& self, Rank final_dest, std::span<const std::uint64_t> words);

    /// Sends all non-empty buffers.
    void flush(RankHandle& self);

    [[nodiscard]] bool has_buffered() const noexcept { return buffered_words_ > 0; }
    [[nodiscard]] std::uint64_t buffered_words() const noexcept { return buffered_words_; }
    [[nodiscard]] int tag() const noexcept { return tag_; }

    /// Batch-boundary hook for streaming workloads: advances the queue to
    /// `epoch`. Requires an epoch-stamped queue and a clean boundary (all
    /// buffers flushed and the phase quiescent) — traffic from one batch must
    /// never bleed into the next, and handle() enforces this by rejecting
    /// records whose stamp disagrees with the current epoch.
    void begin_epoch(std::uint64_t epoch);
    [[nodiscard]] bool epoch_stamped() const noexcept { return epoch_stamped_; }
    [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

    using Deliver = std::function<void(RankHandle&, std::span<const std::uint64_t>)>;

    /// Processes one received physical payload: delivers records addressed
    /// to this PE and re-posts (aggregates) records in transit. Returns the
    /// number of records delivered locally.
    std::size_t handle(RankHandle& self, std::span<const std::uint64_t> payload,
                       const Deliver& deliver);

private:
    /// Per-record header size on the wire: [final_dest, record_len] plus the
    /// epoch stamp when enabled.
    [[nodiscard]] std::size_t header_words() const noexcept {
        return epoch_stamped_ ? 3 : 2;
    }

    std::uint64_t threshold_;
    const Router* router_;
    int tag_;
    bool epoch_stamped_;
    std::uint64_t epoch_ = 0;
    std::unordered_map<Rank, WordVec> buffers_;
    std::uint64_t buffered_words_ = 0;
};

}  // namespace katric::net
