#include "net/simulator.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"
#include "util/bits.hpp"

namespace katric::net {

namespace {
std::string oom_message(Rank rank, std::uint64_t words) {
    std::ostringstream out;
    out << "PE " << rank << " exceeded its memory budget with " << words
        << " buffered words";
    return out.str();
}
}  // namespace

OomError::OomError(Rank rank, std::uint64_t words)
    : std::runtime_error(oom_message(rank, words)), rank_(rank), words_(words) {}

Rank RankHandle::size() const noexcept { return sim_->num_ranks(); }

const NetworkConfig& RankHandle::config() const noexcept { return sim_->config_; }

void RankHandle::send(Rank dest, WordVec payload, int tag) {
    sim_->send_from(rank_, dest, tag, std::move(payload));
}

void RankHandle::send_sized(Rank dest, std::uint64_t words, int tag) {
    sim_->send_sized_from(rank_, dest, tag, words);
}

void RankHandle::charge_ops(std::uint64_t ops) {
    sim_->clocks_[rank_] += static_cast<double>(ops) * sim_->config_.compute_op;
    sim_->metrics_[rank_].compute_ops += ops;
}

void RankHandle::charge_seconds(double seconds) {
    KATRIC_ASSERT(seconds >= 0.0);
    sim_->clocks_[rank_] += seconds;
}

double RankHandle::now() const noexcept { return sim_->clocks_[rank_]; }

void RankHandle::note_buffered_words(std::uint64_t current_words) {
    auto& m = sim_->metrics_[rank_];
    m.peak_buffered_words = std::max(m.peak_buffered_words, current_words);
    if (current_words > sim_->config_.memory_limit_words) {
        throw OomError(rank_, current_words);
    }
}

const RankMetrics& RankHandle::metrics() const noexcept { return sim_->metrics_[rank_]; }

Simulator::Simulator(Rank num_ranks, NetworkConfig config)
    : config_(config), num_ranks_(num_ranks) {
    KATRIC_ASSERT(num_ranks >= 1);
    clocks_.assign(num_ranks_, 0.0);
    metrics_.assign(num_ranks_, RankMetrics{});
}

void Simulator::send_from(Rank src, Rank dest, int tag, WordVec payload) {
    const auto len = static_cast<std::uint64_t>(payload.size());
    enqueue(src, dest, tag, len, std::move(payload));
}

void Simulator::send_sized_from(Rank src, Rank dest, int tag, std::uint64_t words) {
    enqueue(src, dest, tag, words, WordVec{});
}

void Simulator::enqueue(Rank src, Rank dest, int tag, std::uint64_t words,
                        WordVec payload) {
    KATRIC_ASSERT(dest < num_ranks_);
    double arrival = clocks_[src];
    if (src != dest) {
        // Single-ported injection: the sender's port is busy for α + β·ℓ.
        const double cost = config_.alpha + config_.beta * static_cast<double>(words);
        clocks_[src] += cost;
        arrival = clocks_[src];
        metrics_[src].messages_sent += 1;
        metrics_[src].words_sent += words;
    }
    events_.push(Event{arrival, next_seq_++, src, dest, tag, words, std::move(payload)});
}

void Simulator::deliver_until_quiescent(const MessageHandler& on_message,
                                        const RankFn& on_idle) {
    while (true) {
        while (!events_.empty()) {
            // priority_queue::top is const; the payload must be moved out, so
            // copy the small fields first and const_cast the pop-and-move —
            // standard idiom for move-only payloads in a priority queue.
            Event event = std::move(const_cast<Event&>(events_.top()));
            events_.pop();
            const Rank dest = event.dest;
            RankHandle handle(*this, dest);
            clocks_[dest] = std::max(clocks_[dest], event.arrival);
            if (event.src != dest) {
                // Receiver port occupancy, mirroring the sender charge: the
                // paper's hotspot analysis ("p messages require time
                // p(α+β)") charges the receiving PE per message.
                clocks_[dest] += config_.alpha
                                 + config_.beta * static_cast<double>(event.words);
                metrics_[dest].messages_received += 1;
                metrics_[dest].words_received += event.words;
            }
            if (on_message) {
                on_message(handle, event.src, event.tag,
                           std::span<const std::uint64_t>(event.payload));
            }
        }
        if (!on_idle) { break; }
        for (Rank r = 0; r < num_ranks_; ++r) {
            RankHandle handle(*this, r);
            on_idle(handle);
        }
        if (events_.empty()) { break; }
    }
}

double Simulator::run_phase(const std::string& name, const RankFn& start,
                            const MessageHandler& on_message, const RankFn& on_idle) {
    const double phase_start = barrier_time_;
    std::fill(clocks_.begin(), clocks_.end(), phase_start);
    std::vector<RankMetrics> metrics_before;
    if (record_phase_details_) { metrics_before = metrics_; }
    if (start) {
        for (Rank r = 0; r < num_ranks_; ++r) {
            RankHandle handle(*this, r);
            start(handle);
        }
    }
    deliver_until_quiescent(on_message, on_idle);

    double makespan = phase_start;
    for (double clock : clocks_) { makespan = std::max(makespan, clock); }
    if (num_ranks_ > 1) {
        makespan += config_.alpha * static_cast<double>(katric::ceil_log2(num_ranks_));
    }
    barrier_time_ = makespan;
    PhaseRecord record{name, phase_start, barrier_time_};
    if (record_phase_details_) {
        record.rank_busy_end = clocks_;
        record.rank_delta.resize(static_cast<std::size_t>(num_ranks_));
        for (Rank r = 0; r < num_ranks_; ++r) {
            const RankMetrics& before = metrics_before[r];
            const RankMetrics& after = metrics_[r];
            RankMetrics& delta = record.rank_delta[r];
            delta.messages_sent = after.messages_sent - before.messages_sent;
            delta.messages_received = after.messages_received - before.messages_received;
            delta.words_sent = after.words_sent - before.words_sent;
            delta.words_received = after.words_received - before.words_received;
            delta.compute_ops = after.compute_ops - before.compute_ops;
            // Not a monotone counter; carry the phase-end high-water mark.
            delta.peak_buffered_words = after.peak_buffered_words;
        }
    }
    phases_.push_back(std::move(record));
    return barrier_time_ - phase_start;
}

}  // namespace katric::net
