#include "net/simulator.hpp"

#include <algorithm>
#include <sstream>

#include "net/encoding.hpp"
#include "util/assert.hpp"
#include "util/bits.hpp"

namespace katric::net {

namespace {
std::string oom_message(Rank rank, std::uint64_t words) {
    std::ostringstream out;
    out << "PE " << rank << " exceeded its memory budget with " << words
        << " buffered words";
    return out.str();
}
}  // namespace

OomError::OomError(Rank rank, std::uint64_t words)
    : std::runtime_error(oom_message(rank, words)), rank_(rank), words_(words) {}

FaultError::FaultError(NetError code, const std::string& detail)
    : std::runtime_error(detail), code_(code) {}

CancelledError::CancelledError()
    : std::runtime_error("query cancelled at a superstep boundary "
                         "(deadline expired or caller cancelled)") {}

Rank RankHandle::size() const noexcept { return sim_->num_ranks(); }

const NetworkConfig& RankHandle::config() const noexcept { return sim_->config_; }

void RankHandle::send(Rank dest, WordVec payload, int tag) {
    sim_->send_from(rank_, dest, tag, std::move(payload));
}

void RankHandle::send_sized(Rank dest, std::uint64_t words, int tag) {
    sim_->send_sized_from(rank_, dest, tag, words);
}

void RankHandle::charge_ops(std::uint64_t ops) {
    sim_->clocks_[rank_] += static_cast<double>(ops) * sim_->config_.compute_op;
    sim_->metrics_[rank_].compute_ops += ops;
}

void RankHandle::charge_seconds(double seconds) {
    KATRIC_ASSERT(seconds >= 0.0);
    sim_->clocks_[rank_] += seconds;
}

double RankHandle::now() const noexcept { return sim_->clocks_[rank_]; }

void RankHandle::note_buffered_words(std::uint64_t current_words) {
    auto& m = sim_->metrics_[rank_];
    m.peak_buffered_words = std::max(m.peak_buffered_words, current_words);
    if (current_words > sim_->config_.memory_limit_words) {
        throw OomError(rank_, current_words);
    }
}

const RankMetrics& RankHandle::metrics() const noexcept { return sim_->metrics_[rank_]; }

Simulator::Simulator(Rank num_ranks, NetworkConfig config)
    : config_(config), num_ranks_(num_ranks) {
    KATRIC_ASSERT(num_ranks >= 1);
    clocks_.assign(num_ranks_, 0.0);
    metrics_.assign(num_ranks_, RankMetrics{});
}

void Simulator::harden(const HardenOptions& options) {
    fault_ = std::make_unique<FaultState>();
    fault_->opts = options;
}

void Simulator::send_from(Rank src, Rank dest, int tag, WordVec payload) {
    if (fault_ != nullptr && fault_->opts.frame && src != dest) {
        // Hardened path: frame, retain for retransmission, inject. Self-sends
        // never cross the network and keep the raw path; size-only sends
        // (send_sized_from) carry no payload to protect and do the same.
        KATRIC_ASSERT(dest < num_ranks_);
        const std::uint64_t id = ++fault_->next_frame_id;
        WordVec framed = frame_payload(id, src, dest, tag,
                                       std::span<const std::uint64_t>(payload));
        fault_->in_flight.emplace(id, InFlightFrame{src, dest, tag, std::move(framed), 1});
        if (fault_->opts.stats != nullptr) { ++fault_->opts.stats->frames_sent; }
        push_hardened(id);
        return;
    }
    const auto len = static_cast<std::uint64_t>(payload.size());
    enqueue(src, dest, tag, len, std::move(payload));
}

void Simulator::push_hardened(std::uint64_t frame_id) {
    FaultState& st = *fault_;
    const InFlightFrame& f = st.in_flight.at(frame_id);
    WordVec buffer = f.framed;  // pristine retained copy; faults mutate this one
    // Sender injection charge, including the 3-word frame header — the
    // hardening overhead is visible in simulated time, as it would be on a
    // real wire.
    const auto words = static_cast<std::uint64_t>(buffer.size());
    clocks_[f.src] += config_.alpha + config_.beta * static_cast<double>(words);
    double arrival = clocks_[f.src];
    metrics_[f.src].messages_sent += 1;
    metrics_[f.src].words_sent += words;

    bool duplicate = false;
    if (st.opts.injector != nullptr) {
        fault::FaultStats* stats = st.opts.stats;
        if (const auto d = st.opts.injector->decide(frame_id, f.attempts)) {
            switch (d->kind) {
                case fault::FaultKind::kDrop:
                    if (stats != nullptr) { ++stats->injected_drop; }
                    return;  // no event; the quiescence sweep recovers it
                case fault::FaultKind::kDuplicate:
                    if (stats != nullptr) { ++stats->injected_duplicate; }
                    duplicate = true;
                    break;
                case fault::FaultKind::kReorder:
                    // Jitter by 1..4 message slots: enough for later sends
                    // from the same rank to overtake this one (FIFO breaks),
                    // small enough to stay inside the phase.
                    if (stats != nullptr) { ++stats->injected_reorder; }
                    arrival += static_cast<double>(d->detail)
                               * (config_.alpha + config_.beta * static_cast<double>(words));
                    break;
                case fault::FaultKind::kDelay:
                    if (stats != nullptr) { ++stats->injected_delay; }
                    arrival += st.opts.injector->plan().delay_seconds;
                    break;
                case fault::FaultKind::kTruncate: {
                    if (stats != nullptr) { ++stats->injected_truncate; }
                    const auto cut = std::min<std::size_t>(
                        static_cast<std::size_t>(d->detail), buffer.size());
                    buffer.resize(buffer.size() - cut);
                    break;
                }
                case fault::FaultKind::kBitFlip: {
                    if (stats != nullptr) { ++stats->injected_bitflip; }
                    const std::uint64_t bit =
                        d->detail % (static_cast<std::uint64_t>(buffer.size()) * 64);
                    buffer[bit / 64] ^= 1ULL << (bit % 64);
                    break;
                }
                case fault::FaultKind::kStall:
                case fault::FaultKind::kCrash:
                    break;  // rank-level faults, never produced by decide()
            }
        }
    }
    const auto delivered_words = static_cast<std::uint64_t>(buffer.size());
    if (duplicate) {
        WordVec copy = buffer;
        events_.push(Event{arrival, next_seq_++, f.src, f.dest, f.tag, delivered_words,
                           std::move(copy), frame_id});
    }
    events_.push(Event{arrival, next_seq_++, f.src, f.dest, f.tag, delivered_words,
                       std::move(buffer), frame_id});
}

void Simulator::retransmit(std::uint64_t frame_id, NetError exhausted_as) {
    FaultState& st = *fault_;
    const auto it = st.in_flight.find(frame_id);
    KATRIC_ASSERT(it != st.in_flight.end());
    InFlightFrame& f = it->second;
    // attempts counts sends so far; the retry budget caps retransmissions.
    if (f.attempts > st.opts.max_retries) {
        std::ostringstream out;
        out << "frame " << frame_id << " (" << f.src << "→" << f.dest << ", "
            << f.framed.size() << " words) unrecovered after " << f.attempts
            << " attempt(s); retry budget " << st.opts.max_retries << " exhausted";
        throw FaultError(exhausted_as, out.str());
    }
    ++f.attempts;
    if (st.opts.stats != nullptr) { ++st.opts.stats->retransmits; }
    // Exponential backoff: the sender's port idles α·2^attempt before the
    // re-injection charge, so repeated failures slow the offered load instead
    // of hammering the link.
    const auto shift = std::min<std::uint32_t>(f.attempts, 16);
    clocks_[f.src] += config_.alpha * static_cast<double>(1ULL << shift);
    push_hardened(frame_id);
}

std::optional<std::span<const std::uint64_t>> Simulator::receive_hardened(
    const Event& event) {
    FaultState& st = *fault_;
    const FrameView view =
        verify_frame(std::span<const std::uint64_t>(event.payload),
                     static_cast<std::uint32_t>(event.src),
                     static_cast<std::uint32_t>(event.dest), event.tag);
    if (view.status != FrameStatus::kOk) {
        // Detected truncation/corruption: request a fresh copy immediately.
        // The lookup keys on the event's frame id — the network's own record
        // of the send — so a flipped header word cannot misroute recovery.
        if (st.opts.stats != nullptr) { ++st.opts.stats->corrupt_detected; }
        retransmit(event.frame, NetError::kCorrupt);
        return std::nullopt;
    }
    if (!st.delivered.insert(event.frame).second) {
        // Idempotent re-delivery: duplicates (injected, or a retransmission
        // racing a delayed original) are verified, then suppressed.
        if (st.opts.stats != nullptr) { ++st.opts.stats->duplicates_suppressed; }
        return std::nullopt;
    }
    st.in_flight.erase(event.frame);
    return view.payload;
}

void Simulator::send_sized_from(Rank src, Rank dest, int tag, std::uint64_t words) {
    enqueue(src, dest, tag, words, WordVec{});
}

void Simulator::enqueue(Rank src, Rank dest, int tag, std::uint64_t words,
                        WordVec payload) {
    KATRIC_ASSERT(dest < num_ranks_);
    double arrival = clocks_[src];
    if (src != dest) {
        // Single-ported injection: the sender's port is busy for α + β·ℓ.
        const double cost = config_.alpha + config_.beta * static_cast<double>(words);
        clocks_[src] += cost;
        arrival = clocks_[src];
        metrics_[src].messages_sent += 1;
        metrics_[src].words_sent += words;
    }
    events_.push(Event{arrival, next_seq_++, src, dest, tag, words, std::move(payload)});
}

void Simulator::deliver_until_quiescent(const MessageHandler& on_message,
                                        const RankFn& on_idle) {
    while (true) {
        while (!events_.empty()) {
            // priority_queue::top is const; the payload must be moved out, so
            // copy the small fields first and const_cast the pop-and-move —
            // standard idiom for move-only payloads in a priority queue.
            Event event = std::move(const_cast<Event&>(events_.top()));
            events_.pop();
            const Rank dest = event.dest;
            RankHandle handle(*this, dest);
            clocks_[dest] = std::max(clocks_[dest], event.arrival);
            if (event.src != dest) {
                // Receiver port occupancy, mirroring the sender charge: the
                // paper's hotspot analysis ("p messages require time
                // p(α+β)") charges the receiving PE per message.
                clocks_[dest] += config_.alpha
                                 + config_.beta * static_cast<double>(event.words);
                metrics_[dest].messages_received += 1;
                metrics_[dest].words_received += event.words;
            }
            std::span<const std::uint64_t> payload(event.payload);
            if (event.frame != 0) {
                const auto verified = receive_hardened(event);
                if (!verified.has_value()) { continue; }  // suppressed or re-sent
                payload = *verified;
            }
            if (on_message) { on_message(handle, event.src, event.tag, payload); }
        }
        if (fault_ != nullptr && !fault_->in_flight.empty()) {
            // The queue drained but frames are unaccounted for: they were
            // dropped in flight. Re-send each (deterministic id order) and
            // keep delivering; budget exhaustion surfaces as kTimeout — a
            // loss, unlike corruption, is only observable as absence.
            std::vector<std::uint64_t> lost;
            lost.reserve(fault_->in_flight.size());
            for (const auto& [id, frame] : fault_->in_flight) { lost.push_back(id); }
            for (const std::uint64_t id : lost) { retransmit(id, NetError::kTimeout); }
            continue;
        }
        if (!on_idle) { break; }
        for (Rank r = 0; r < num_ranks_; ++r) {
            RankHandle handle(*this, r);
            on_idle(handle);
        }
        // A frame sent during the idle round may itself have been dropped:
        // the event queue is then empty but the frame is unaccounted for.
        // Loop back so the lost-frame sweep above runs; only true quiescence
        // — no events AND no in-flight frames — ends the phase.
        if (events_.empty()
            && (fault_ == nullptr || fault_->in_flight.empty())) {
            break;
        }
    }
}

double Simulator::run_phase(const std::string& name, const RankFn& start,
                            const MessageHandler& on_message, const RankFn& on_idle) {
    const double phase_start = barrier_time_;
    std::fill(clocks_.begin(), clocks_.end(), phase_start);
    if (fault_ != nullptr) {
        FaultState& st = *fault_;
        // Cooperative cancellation and rank-level faults land at superstep
        // boundaries: a superstep either runs to completion or not at all.
        if (st.opts.cancel != nullptr && st.opts.cancel->expired()) {
            throw CancelledError();
        }
        if (st.opts.injector != nullptr && st.opts.injector->has_rank_faults()) {
            for (Rank r = 0; r < num_ranks_; ++r) {
                if (st.opts.injector->crashed(static_cast<std::uint32_t>(r),
                                              st.superstep)) {
                    std::ostringstream out;
                    out << "rank " << r << " crashed before superstep " << st.superstep
                        << " ('" << name << "')";
                    throw FaultError(NetError::kRankLost, out.str());
                }
                if (st.opts.injector->stalls(static_cast<std::uint32_t>(r),
                                             st.superstep)) {
                    if (st.opts.stats != nullptr) { ++st.opts.stats->injected_stall; }
                    clocks_[r] += st.opts.injector->plan().stall_seconds;
                }
            }
        }
    }
    std::vector<RankMetrics> metrics_before;
    if (record_phase_details_) { metrics_before = metrics_; }
    if (start) {
        for (Rank r = 0; r < num_ranks_; ++r) {
            RankHandle handle(*this, r);
            start(handle);
        }
    }
    deliver_until_quiescent(on_message, on_idle);

    double makespan = phase_start;
    for (double clock : clocks_) { makespan = std::max(makespan, clock); }
    if (num_ranks_ > 1) {
        makespan += config_.alpha * static_cast<double>(katric::ceil_log2(num_ranks_));
    }
    barrier_time_ = makespan;
    PhaseRecord record;
    record.name = name;
    record.start_time = phase_start;
    record.end_time = barrier_time_;
    if (record_phase_details_) {
        record.rank_busy_end = clocks_;
        record.rank_delta.resize(static_cast<std::size_t>(num_ranks_));
        for (Rank r = 0; r < num_ranks_; ++r) {
            const RankMetrics& before = metrics_before[r];
            const RankMetrics& after = metrics_[r];
            RankMetrics& delta = record.rank_delta[r];
            delta.messages_sent = after.messages_sent - before.messages_sent;
            delta.messages_received = after.messages_received - before.messages_received;
            delta.words_sent = after.words_sent - before.words_sent;
            delta.words_received = after.words_received - before.words_received;
            delta.compute_ops = after.compute_ops - before.compute_ops;
            // Not a monotone counter; carry the phase-end high-water mark.
            delta.peak_buffered_words = after.peak_buffered_words;
        }
    }
    phases_.push_back(std::move(record));
    if (fault_ != nullptr) {
        FaultState& st = *fault_;
        KATRIC_ASSERT_MSG(st.in_flight.empty(),
                          "hardened frame(s) unresolved past phase quiescence");
        ++st.superstep;
        // Frame ids are globally unique and the quiescence sweep guarantees
        // every frame resolved within its phase, so the dedup set can reset.
        st.delivered.clear();
        if (st.opts.phase_timeout > 0.0
            && barrier_time_ - phase_start > st.opts.phase_timeout) {
            std::ostringstream out;
            out << "superstep '" << name << "' took " << (barrier_time_ - phase_start)
                << "s simulated, over the --phase-timeout of " << st.opts.phase_timeout
                << "s";
            throw FaultError(NetError::kTimeout, out.str());
        }
    }
    return barrier_time_ - phase_start;
}

}  // namespace katric::net
