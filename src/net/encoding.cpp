#include "net/encoding.hpp"

#include "util/assert.hpp"
#include "util/hash.hpp"

namespace katric::net {

namespace {

/// LEB128-style varint: 7 payload bits per byte, high bit = continuation.
inline void push_varint(std::vector<std::uint8_t>& bytes, std::uint64_t value) {
    while (value >= 0x80) {
        bytes.push_back(static_cast<std::uint8_t>(value) | 0x80);
        value >>= 7;
    }
    bytes.push_back(static_cast<std::uint8_t>(value));
}

inline std::size_t varint_bytes(std::uint64_t value) {
    std::size_t n = 1;
    while (value >= 0x80) {
        value >>= 7;
        ++n;
    }
    return n;
}

std::vector<std::uint8_t> encode_bytes(std::span<const std::uint64_t> values) {
    std::vector<std::uint8_t> bytes;
    bytes.reserve(values.size() * 2);
    std::uint64_t previous = 0;
    bool first = true;
    for (const std::uint64_t v : values) {
        if (first) {
            push_varint(bytes, v);
            first = false;
        } else {
            KATRIC_ASSERT_MSG(v > previous, "encode_sorted requires strictly increasing input");
            push_varint(bytes, v - previous);
        }
        previous = v;
    }
    return bytes;
}

}  // namespace

std::size_t encode_sorted(std::span<const std::uint64_t> values, WordVec& out) {
    const auto bytes = encode_bytes(values);
    const std::size_t words = (bytes.size() + 7) / 8;
    const std::size_t base = out.size();
    out.resize(base + words, 0);
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        out[base + i / 8] |= static_cast<std::uint64_t>(bytes[i]) << (8 * (i % 8));
    }
    return words;
}

std::size_t encoded_words(std::span<const std::uint64_t> values) {
    std::size_t bytes = 0;
    std::uint64_t previous = 0;
    bool first = true;
    for (const std::uint64_t v : values) {
        bytes += varint_bytes(first ? v : v - previous);
        previous = v;
        first = false;
    }
    return (bytes + 7) / 8;
}

void decode_sorted(std::span<const std::uint64_t> words, std::size_t count,
                   std::vector<std::uint64_t>& out) {
    out.clear();
    out.reserve(count);
    std::size_t byte_index = 0;
    const std::size_t byte_limit = words.size() * 8;
    auto next_byte = [&]() {
        KATRIC_ASSERT_MSG(byte_index < byte_limit, "varint stream truncated");
        const std::uint8_t b = static_cast<std::uint8_t>(
            words[byte_index / 8] >> (8 * (byte_index % 8)));
        ++byte_index;
        return b;
    };
    std::uint64_t previous = 0;
    for (std::size_t i = 0; i < count; ++i) {
        std::uint64_t value = 0;
        int shift = 0;
        while (true) {
            const std::uint8_t b = next_byte();
            // The 10th byte contributes only bit 0 (shift 63); any higher
            // payload bit would be silently shifted out of the uint64.
            KATRIC_ASSERT_MSG(shift < 63 || (b & 0x7e) == 0, "varint overlong");
            value |= static_cast<std::uint64_t>(b & 0x7f) << shift;
            if ((b & 0x80) == 0) { break; }
            shift += 7;
            KATRIC_ASSERT_MSG(shift < 64, "varint overlong");
        }
        previous = (i == 0) ? value : previous + value;
        out.push_back(previous);
    }
}

bool try_decode_sorted(std::span<const std::uint64_t> words, std::size_t count,
                       std::vector<std::uint64_t>& out) {
    out.clear();
    // A varint needs at least one byte per value; cheap upfront reject keeps
    // a hostile `count` from reserving unbounded memory.
    const std::size_t byte_limit = words.size() * 8;
    if (count > byte_limit) { return false; }
    out.reserve(count);
    std::size_t byte_index = 0;
    std::uint64_t previous = 0;
    for (std::size_t i = 0; i < count; ++i) {
        std::uint64_t value = 0;
        int shift = 0;
        while (true) {
            if (byte_index >= byte_limit) {
                out.clear();
                return false;  // truncated stream
            }
            const std::uint8_t b = static_cast<std::uint8_t>(
                words[byte_index / 8] >> (8 * (byte_index % 8)));
            ++byte_index;
            if (shift == 63 && (b & 0x7e) != 0) {
                out.clear();
                // Overlong: the 10th byte contributes only bit 0; higher
                // payload bits would be silently shifted out of the uint64,
                // decoding a corrupted stream to a wrong value.
                return false;
            }
            value |= static_cast<std::uint64_t>(b & 0x7f) << shift;
            if ((b & 0x80) == 0) { break; }
            shift += 7;
            if (shift >= 64) {
                out.clear();
                return false;  // overlong varint
            }
        }
        previous = (i == 0) ? value : previous + value;
        out.push_back(previous);
    }
    return true;
}

std::uint64_t frame_checksum(std::uint64_t frame_id, std::uint32_t src,
                             std::uint32_t dest, int tag,
                             std::span<const std::uint64_t> payload) {
    std::uint64_t h = hash64_seeded(frame_id, 0x6672616d65ULL /* "frame" */);
    h = hash_combine(h, src);
    h = hash_combine(h, dest);
    h = hash_combine(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(tag)));
    h = hash_combine(h, payload.size());
    for (const std::uint64_t word : payload) { h = hash_combine(h, word); }
    return h;
}

WordVec frame_payload(std::uint64_t frame_id, std::uint32_t src, std::uint32_t dest,
                      int tag, std::span<const std::uint64_t> payload) {
    WordVec framed;
    framed.reserve(kFrameHeaderWords + payload.size());
    framed.push_back(frame_id);
    framed.push_back(payload.size());
    framed.push_back(frame_checksum(frame_id, src, dest, tag, payload));
    framed.insert(framed.end(), payload.begin(), payload.end());
    return framed;
}

FrameView verify_frame(std::span<const std::uint64_t> words, std::uint32_t src,
                       std::uint32_t dest, int tag) {
    FrameView view;
    if (words.size() < kFrameHeaderWords) { return view; }  // kTruncated
    const std::uint64_t frame_id = words[0];
    const std::uint64_t declared = words[1];
    view.frame_id = frame_id;
    if (words.size() - kFrameHeaderWords < declared) { return view; }  // kTruncated
    const auto payload = words.subspan(kFrameHeaderWords, declared);
    if (frame_checksum(frame_id, src, dest, tag, payload) != words[2]) {
        view.status = FrameStatus::kCorrupt;
        return view;
    }
    view.status = FrameStatus::kOk;
    view.payload = payload;
    return view;
}

}  // namespace katric::net
