#pragma once

#include <cstdint>
#include <utility>

#include "net/simulator.hpp"

namespace katric::net {

/// Routing policy for the message queue: where does a message for
/// `final_dest` physically go first?
class Router {
public:
    virtual ~Router() = default;
    /// Never returns src; returns final_dest when no indirection applies.
    [[nodiscard]] virtual Rank first_hop(Rank src, Rank final_dest) const = 0;
};

/// Direct delivery — DITRIC / CETRIC without the "2" suffix.
class DirectRouter final : public Router {
public:
    [[nodiscard]] Rank first_hop(Rank /*src*/, Rank final_dest) const override {
        return final_dest;
    }
};

/// Grid-based indirect delivery (Section IV-B, Fig. 3): PEs are arranged in
/// a logical grid with ⌊√p + ½⌋ columns; a message from P_{i,j} to P_{k,l}
/// first travels along row i to the proxy P_{i,l}, which aggregates and
/// forwards along column l. With a non-square p the last row may be
/// partial; when the proxy P_{i,l} does not exist (sender sits in the
/// partial last row), the last row is treated as transposed — appended as a
/// column on the right — and the proxy P_{j,l} is used instead. Routing
/// always terminates in at most two hops because a proxy shares its column
/// with the destination.
class GridRouter final : public Router {
public:
    explicit GridRouter(Rank num_ranks);

    [[nodiscard]] Rank first_hop(Rank src, Rank final_dest) const override;

    [[nodiscard]] Rank columns() const noexcept { return columns_; }
    [[nodiscard]] Rank rows() const noexcept { return rows_; }
    /// (row, column) of a rank.
    [[nodiscard]] std::pair<Rank, Rank> coords(Rank r) const noexcept {
        return {r / columns_, r % columns_};
    }
    [[nodiscard]] bool exists(Rank row, Rank col) const noexcept {
        return col < columns_ && static_cast<std::uint64_t>(row) * columns_ + col < num_ranks_;
    }
    [[nodiscard]] Rank id(Rank row, Rank col) const noexcept {
        return row * columns_ + col;
    }

private:
    Rank num_ranks_;
    Rank columns_;
    Rank rows_;
};

/// Two-level (node-aware) routing, the HavoqGT scheme the paper contrasts
/// with its grid: PEs are grouped into compute nodes of `node_size` ranks;
/// traffic to a remote node is first aggregated at a designated local
/// gateway PE for that destination node, which then forwards across the
/// network. Unlike GridRouter this is topology *dependent* — it assumes the
/// rank→node mapping is physical. Terminates in ≤ 2 hops (a gateway sends
/// directly).
class TwoLevelRouter final : public Router {
public:
    TwoLevelRouter(Rank num_ranks, Rank node_size);

    [[nodiscard]] Rank first_hop(Rank src, Rank final_dest) const override;

    [[nodiscard]] Rank node_of(Rank r) const noexcept { return r / node_size_; }
    [[nodiscard]] Rank num_nodes() const noexcept {
        return (num_ranks_ + node_size_ - 1) / node_size_;
    }
    /// The PE inside node `src_node` responsible for traffic to `dst_node`.
    [[nodiscard]] Rank gateway(Rank src_node, Rank dst_node) const;

private:
    Rank num_ranks_;
    Rank node_size_;
};

}  // namespace katric::net
