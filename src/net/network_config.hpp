#pragma once

#include <cstdint>
#include <string>

namespace katric::net {

/// Machine-model parameters (Section II-B of the paper): sending a message
/// of ℓ words costs α + β·ℓ; PEs are connected full-duplex and single-ported.
/// Compute is charged per elementary operation (one comparison of a merge
/// intersection, one hash probe, …) so simulated time tracks the real
/// algorithmic work. All times in seconds.
struct NetworkConfig {
    double alpha = 2e-6;        ///< message startup overhead (OmniPath-class)
    double beta = 0.7e-9;       ///< per 64-bit word transfer time (~11 GB/s)
    double compute_op = 1.5e-9; ///< per elementary compute operation

    /// Per-PE budget for buffered communication data, in 64-bit words.
    /// Exceeding it raises OomError — this models the paper's observation
    /// that TriC's single-shot buffering exhausts PE memory. The default is
    /// deliberately scaled to the proxy-instance sizes (SuperMUC gives
    /// 96 GB / 48 cores = 2 GB/core for paper-scale inputs).
    std::uint64_t memory_limit_words = std::uint64_t{1} << 22;  // 32 MiB

    /// SuperMUC-NG-like defaults (above).
    [[nodiscard]] static NetworkConfig supermuc_like() { return {}; }

    /// Cloud-like network: two orders of magnitude higher latency, ~10× less
    /// bandwidth. Used for the DESIGN.md ablation of the paper's claim that
    /// CETRIC wins on slower interconnects.
    [[nodiscard]] static NetworkConfig cloud_like() {
        NetworkConfig cfg;
        cfg.alpha = 1e-4;
        cfg.beta = 8e-9;
        return cfg;
    }

    [[nodiscard]] std::string describe() const;

    friend bool operator==(const NetworkConfig&, const NetworkConfig&) = default;
};

}  // namespace katric::net
