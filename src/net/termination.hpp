#pragma once

#include <cstdint>
#include <vector>

#include "net/simulator.hpp"

namespace katric::net {

/// Distributed termination detection by the four-counter method (Mattern):
/// the simulator's phases detect quiescence omnisciently, which a real
/// asynchronous sparse all-to-all cannot — it must *prove* that no message
/// is in flight. The protocol:
///
///   1. When a PE becomes locally idle, it reports its send/receive counters
///      (s_i, r_i) to the coordinator (rank 0) via control messages.
///   2. The coordinator accumulates a global snapshot (S, R) per wave.
///   3. Termination is declared when two *consecutive* waves return the same
///      snapshot with S = R — the first wave alone can race with in-flight
///      messages, the repeated identical count cannot (no message was sent
///      or received between the waves, and none is outstanding).
///   4. The coordinator broadcasts the verdict.
///
/// Usage inside a phase: algorithms call note_sent/note_received from their
/// traffic paths and drive waves from the idle hook; terminated() flips once
/// the verdict broadcast arrives. The control traffic itself is sent through
/// the simulator, so its α/β cost appears in the metrics like any other
/// message (this is the realism the omniscient phase loop lacks).
class TerminationDetector {
public:
    /// Tags must not collide with algorithm traffic.
    explicit TerminationDetector(Rank num_ranks, int report_tag = 9001,
                                 int verdict_tag = 9002);

    // --- traffic accounting (call from the algorithm's send/deliver paths) --
    void note_sent(Rank self, std::uint64_t messages = 1) { sent_[self] += messages; }
    void note_received(Rank self, std::uint64_t messages = 1) {
        received_[self] += messages;
    }

    /// Idle hook: reports the current counters to the coordinator if they
    /// changed since the last report (or if a new wave was requested).
    void on_idle(RankHandle& self);

    /// Message hook: returns true if the message belonged to the detector.
    bool handle(RankHandle& self, Rank src, int tag,
                std::span<const std::uint64_t> payload);

    [[nodiscard]] bool terminated(Rank rank) const { return terminated_[rank]; }
    [[nodiscard]] bool all_terminated() const;
    /// Number of completed snapshot waves (for tests/diagnostics).
    [[nodiscard]] std::uint64_t waves() const noexcept { return waves_; }

private:
    void coordinator_check(RankHandle& self);

    Rank num_ranks_;
    int report_tag_;
    int verdict_tag_;
    std::vector<std::uint64_t> sent_;
    std::vector<std::uint64_t> received_;
    std::vector<std::uint64_t> last_reported_sent_;
    std::vector<std::uint64_t> last_reported_received_;
    std::vector<bool> reported_once_;
    std::vector<bool> terminated_;

    // Coordinator state (only rank 0 uses these).
    std::vector<std::uint64_t> latest_sent_;
    std::vector<std::uint64_t> latest_received_;
    std::vector<bool> heard_from_;
    std::uint64_t waves_ = 0;
    bool have_previous_snapshot_ = false;
    std::uint64_t previous_total_sent_ = 0;
    std::uint64_t previous_total_received_ = 0;
    bool verdict_sent_ = false;
};

}  // namespace katric::net
