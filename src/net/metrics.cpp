#include "net/metrics.hpp"

#include <algorithm>

namespace katric::net {

void RankMetrics::merge(const RankMetrics& other) noexcept {
    messages_sent += other.messages_sent;
    messages_received += other.messages_received;
    words_sent += other.words_sent;
    words_received += other.words_received;
    compute_ops += other.compute_ops;
    peak_buffered_words = std::max(peak_buffered_words, other.peak_buffered_words);
}

std::uint64_t max_messages_sent(std::span<const RankMetrics> ranks) noexcept {
    std::uint64_t result = 0;
    for (const auto& r : ranks) { result = std::max(result, r.messages_sent); }
    return result;
}

std::uint64_t max_words_sent(std::span<const RankMetrics> ranks) noexcept {
    std::uint64_t result = 0;
    for (const auto& r : ranks) { result = std::max(result, r.words_sent); }
    return result;
}

std::uint64_t total_words_sent(std::span<const RankMetrics> ranks) noexcept {
    std::uint64_t result = 0;
    for (const auto& r : ranks) { result += r.words_sent; }
    return result;
}

std::uint64_t total_messages_sent(std::span<const RankMetrics> ranks) noexcept {
    std::uint64_t result = 0;
    for (const auto& r : ranks) { result += r.messages_sent; }
    return result;
}

std::uint64_t max_peak_buffered(std::span<const RankMetrics> ranks) noexcept {
    std::uint64_t result = 0;
    for (const auto& r : ranks) { result = std::max(result, r.peak_buffered_words); }
    return result;
}

double phase_time(std::span<const PhaseRecord> phases, const std::string& name) {
    double total = 0.0;
    for (const auto& p : phases) {
        if (p.name == name) { total += p.duration(); }
    }
    return total;
}

}  // namespace katric::net
