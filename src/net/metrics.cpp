#include "net/metrics.hpp"

#include <algorithm>

namespace katric::net {

void RankMetrics::merge(const RankMetrics& other) noexcept {
    messages_sent += other.messages_sent;
    messages_received += other.messages_received;
    words_sent += other.words_sent;
    words_received += other.words_received;
    compute_ops += other.compute_ops;
    peak_buffered_words = std::max(peak_buffered_words, other.peak_buffered_words);
}

std::uint64_t max_messages_sent(std::span<const RankMetrics> ranks) noexcept {
    std::uint64_t result = 0;
    for (const auto& r : ranks) { result = std::max(result, r.messages_sent); }
    return result;
}

std::uint64_t max_words_sent(std::span<const RankMetrics> ranks) noexcept {
    std::uint64_t result = 0;
    for (const auto& r : ranks) { result = std::max(result, r.words_sent); }
    return result;
}

std::uint64_t total_words_sent(std::span<const RankMetrics> ranks) noexcept {
    std::uint64_t result = 0;
    for (const auto& r : ranks) { result += r.words_sent; }
    return result;
}

std::uint64_t total_messages_sent(std::span<const RankMetrics> ranks) noexcept {
    std::uint64_t result = 0;
    for (const auto& r : ranks) { result += r.messages_sent; }
    return result;
}

std::uint64_t max_peak_buffered(std::span<const RankMetrics> ranks) noexcept {
    std::uint64_t result = 0;
    for (const auto& r : ranks) { result = std::max(result, r.peak_buffered_words); }
    return result;
}

double phase_time(std::span<const PhaseRecord> phases, const std::string& name) {
    double total = 0.0;
    for (const auto& p : phases) {
        if (p.name == name) { total += p.duration(); }
    }
    return total;
}

bool phase_name_matches(const std::string& name, const std::string& pattern) {
    if (!pattern.empty() && pattern.back() == '*') {
        return name.compare(0, pattern.size() - 1, pattern, 0, pattern.size() - 1) == 0;
    }
    return name == pattern;
}

double phase_time_matching(std::span<const PhaseRecord> phases, const std::string& pattern) {
    double total = 0.0;
    for (const auto& p : phases) {
        if (phase_name_matches(p.name, pattern)) { total += p.duration(); }
    }
    return total;
}

namespace {

std::string phase_group_key(const std::string& name) {
    const std::size_t cut = name.find_first_of(":/");
    return cut == std::string::npos ? name : name.substr(0, cut);
}

}  // namespace

std::vector<PhaseAgg> aggregate_phase_times(std::span<const PhaseRecord> phases) {
    std::vector<PhaseAgg> groups;
    for (const auto& p : phases) {
        const std::string key = phase_group_key(p.name);
        auto it = std::find_if(groups.begin(), groups.end(),
                               [&](const PhaseAgg& g) { return g.name == key; });
        if (it == groups.end()) {
            groups.push_back(PhaseAgg{key});
            it = groups.end() - 1;
        }
        it->seconds += p.duration();
        ++it->supersteps;
        for (const auto& delta : p.rank_delta) {
            it->messages_sent += delta.messages_sent;
            it->words_sent += delta.words_sent;
        }
    }
    return groups;
}

}  // namespace katric::net
