#include "net/network_config.hpp"

#include <sstream>

namespace katric::net {

std::string NetworkConfig::describe() const {
    std::ostringstream out;
    out << "alpha=" << alpha * 1e6 << "us beta=" << beta * 1e9
        << "ns/word compute_op=" << compute_op * 1e9
        << "ns mem_limit=" << (memory_limit_words >> 17) << "MiB/PE";
    return out.str();
}

}  // namespace katric::net
