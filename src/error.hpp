#pragma once

#include <cstdint>
#include <string>

namespace katric {

namespace core {
enum class RunError : std::uint8_t;
enum class Algorithm;
}  // namespace core

enum class ConfigError : std::uint8_t;

/// Typed serving failure reported by ServeSession::submit — the admission
/// layer's analogue of core::RunError. Carried in Report::error with
/// Error::Domain::kServe; a rejected submission never reaches a worker and
/// its report carries no metrics.
enum class ServeError : std::uint8_t {
    kNone = 0,
    /// The bounded admission queue was full (open-loop overload). Resubmit
    /// later or raise --queue-depth.
    kRejected,
    /// The session was drained (or destroyed) before the submission.
    kStopped,
    /// The query kind cannot be served concurrently (streaming sessions
    /// mutate the views; use Engine::open_stream directly).
    kUnsupported,
};

[[nodiscard]] std::string serve_error_message(ServeError error);

/// The library's one error surface: every typed failure — run preconditions
/// (core::RunError), flag parsing (ConfigError), and serving admission
/// (ServeError) — as a single (domain, code, message) value carried by
/// Report::error and ConfigParse. The domain enums keep their definitions
/// (and call sites keep comparing against them: `error == RunError::k...`
/// works); Error just gives them one shape, so a caller can route on
/// `error.domain` and log `error.message` without knowing which subsystem
/// failed.
struct Error {
    enum class Domain : std::uint8_t {
        kNone = 0,  ///< success: code 0, empty message
        kRun,       ///< core::RunError
        kConfig,    ///< katric::ConfigError
        kServe,     ///< katric::ServeError
    };

    Domain domain = Domain::kNone;
    std::uint8_t code = 0;  ///< the domain enum's value, 0 iff domain == kNone
    std::string message;    ///< human-readable; empty on success

    [[nodiscard]] bool ok() const noexcept { return domain == Domain::kNone; }

    /// Domain accessors: the typed code when the domain matches, kNone
    /// otherwise — so `report.error.run()` is safe to switch on regardless
    /// of which subsystem produced the error.
    [[nodiscard]] core::RunError run() const noexcept {
        return domain == Domain::kRun ? static_cast<core::RunError>(code)
                                      : static_cast<core::RunError>(0);
    }
    [[nodiscard]] ConfigError config() const noexcept {
        return domain == Domain::kConfig ? static_cast<ConfigError>(code)
                                         : static_cast<ConfigError>(0);
    }
    [[nodiscard]] ServeError serve() const noexcept {
        return domain == Domain::kServe ? static_cast<ServeError>(code) : ServeError::kNone;
    }

    /// Errors compare by (domain, code); the message is presentation.
    friend bool operator==(const Error& a, const Error& b) noexcept {
        return a.domain == b.domain && a.code == b.code;
    }

    /// Comparisons against the domain enums, so call sites read naturally:
    /// `report.error == core::RunError::kSinkUnsupported`. A domain's kNone
    /// (value 0) matches any successful Error regardless of domain tag.
    friend bool operator==(const Error& e, core::RunError r) noexcept {
        const auto code = static_cast<std::uint8_t>(r);
        return code == 0 ? e.ok() : (e.domain == Domain::kRun && e.code == code);
    }
    friend bool operator==(const Error& e, ConfigError c) noexcept {
        const auto code = static_cast<std::uint8_t>(c);
        return code == 0 ? e.ok() : (e.domain == Domain::kConfig && e.code == code);
    }
    friend bool operator==(const Error& e, ServeError s) noexcept {
        const auto code = static_cast<std::uint8_t>(s);
        return code == 0 ? e.ok() : (e.domain == Domain::kServe && e.code == code);
    }
};

/// Factories: build a typed Error with the domain's canonical message. A
/// kNone input yields a success Error (domain kNone) so call sites can
/// funnel results unconditionally.
[[nodiscard]] Error make_error(core::RunError error, core::Algorithm algorithm);
[[nodiscard]] Error make_error(ConfigError error, const std::string& detail);
[[nodiscard]] Error make_error(ServeError error);

}  // namespace katric
