#pragma once

#include <cstdint>
#include <string>

namespace katric {

namespace core {
enum class RunError : std::uint8_t;
enum class Algorithm;
}  // namespace core

enum class ConfigError : std::uint8_t;

/// Typed serving failure reported by ServeSession::submit — the admission
/// layer's analogue of core::RunError. Carried in Report::error with
/// Error::Domain::kServe; a rejected submission never reaches a worker and
/// its report carries no metrics.
enum class ServeError : std::uint8_t {
    kNone = 0,
    /// The bounded admission queue was full (open-loop overload). Resubmit
    /// later or raise --queue-depth.
    kRejected,
    /// The session was drained (or destroyed) before the submission.
    kStopped,
    /// The query kind cannot be served concurrently (streaming sessions
    /// mutate the views; use Engine::open_stream directly).
    kUnsupported,
    /// The request's deadline expired: shed from the queue before a worker
    /// picked it up, or cancelled cooperatively at a superstep boundary
    /// mid-run. Either way no usable result was produced.
    kDeadline,
};

[[nodiscard]] std::string serve_error_message(ServeError error);

/// Typed communication failure detected by the hardened message layer
/// (src/fault/ + net::Simulator framing): carried in Report::error with
/// Error::Domain::kNet. The counting run either recovered (bounded
/// retransmission, idempotent re-delivery) and produced the exact result, or
/// it surfaces one of these — never a silently divergent count.
enum class NetError : std::uint8_t {
    kNone = 0,
    /// A payload failed its frame checksum (bit flip / truncation) and
    /// bounded retransmission could not obtain a clean copy.
    kCorrupt,
    /// A message was lost (or a superstep exceeded its configured
    /// --phase-timeout) and retry-with-backoff exhausted its budget.
    kTimeout,
    /// A rank crashed (stopped participating) at a superstep boundary.
    kRankLost,
};

[[nodiscard]] std::string net_error_message(NetError error);

/// The library's one error surface: every typed failure — run preconditions
/// (core::RunError), flag parsing (ConfigError), and serving admission
/// (ServeError) — as a single (domain, code, message) value carried by
/// Report::error and ConfigParse. The domain enums keep their definitions
/// (and call sites keep comparing against them: `error == RunError::k...`
/// works); Error just gives them one shape, so a caller can route on
/// `error.domain` and log `error.message` without knowing which subsystem
/// failed.
struct Error {
    enum class Domain : std::uint8_t {
        kNone = 0,  ///< success: code 0, empty message
        kRun,       ///< core::RunError
        kConfig,    ///< katric::ConfigError
        kServe,     ///< katric::ServeError
        kNet,       ///< katric::NetError (hardened message layer)
    };

    Domain domain = Domain::kNone;
    std::uint8_t code = 0;  ///< the domain enum's value, 0 iff domain == kNone
    std::string message;    ///< human-readable; empty on success

    [[nodiscard]] bool ok() const noexcept { return domain == Domain::kNone; }

    /// Domain accessors: the typed code when the domain matches, kNone
    /// otherwise — so `report.error.run()` is safe to switch on regardless
    /// of which subsystem produced the error.
    [[nodiscard]] core::RunError run() const noexcept {
        return domain == Domain::kRun ? static_cast<core::RunError>(code)
                                      : static_cast<core::RunError>(0);
    }
    [[nodiscard]] ConfigError config() const noexcept {
        return domain == Domain::kConfig ? static_cast<ConfigError>(code)
                                         : static_cast<ConfigError>(0);
    }
    [[nodiscard]] ServeError serve() const noexcept {
        return domain == Domain::kServe ? static_cast<ServeError>(code) : ServeError::kNone;
    }
    [[nodiscard]] NetError net() const noexcept {
        return domain == Domain::kNet ? static_cast<NetError>(code) : NetError::kNone;
    }

    /// Errors compare by (domain, code); the message is presentation.
    friend bool operator==(const Error& a, const Error& b) noexcept {
        return a.domain == b.domain && a.code == b.code;
    }

    /// Comparisons against the domain enums, so call sites read naturally:
    /// `report.error == core::RunError::kSinkUnsupported`. A domain's kNone
    /// (value 0) matches any successful Error regardless of domain tag.
    friend bool operator==(const Error& e, core::RunError r) noexcept {
        const auto code = static_cast<std::uint8_t>(r);
        return code == 0 ? e.ok() : (e.domain == Domain::kRun && e.code == code);
    }
    friend bool operator==(const Error& e, ConfigError c) noexcept {
        const auto code = static_cast<std::uint8_t>(c);
        return code == 0 ? e.ok() : (e.domain == Domain::kConfig && e.code == code);
    }
    friend bool operator==(const Error& e, ServeError s) noexcept {
        const auto code = static_cast<std::uint8_t>(s);
        return code == 0 ? e.ok() : (e.domain == Domain::kServe && e.code == code);
    }
    friend bool operator==(const Error& e, NetError n) noexcept {
        const auto code = static_cast<std::uint8_t>(n);
        return code == 0 ? e.ok() : (e.domain == Domain::kNet && e.code == code);
    }
};

/// Factories: build a typed Error with the domain's canonical message. A
/// kNone input yields a success Error (domain kNone) so call sites can
/// funnel results unconditionally.
[[nodiscard]] Error make_error(core::RunError error, core::Algorithm algorithm);
/// Algorithm-independent kRun factory (input validation): `detail` — what
/// was malformed and where — is appended to the canonical message.
[[nodiscard]] Error make_error(core::RunError error, const std::string& detail);
[[nodiscard]] Error make_error(ConfigError error, const std::string& detail);
[[nodiscard]] Error make_error(ServeError error);
/// kNet factory: `detail` (the throwing layer's diagnosis — which frame,
/// which rank, how many retries) is appended to the canonical message.
[[nodiscard]] Error make_error(NetError error, const std::string& detail);

}  // namespace katric
