#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace katric {

/// Welford's online mean/variance accumulator. O(1) memory, numerically
/// stable; used for per-PE metric aggregation where storing all samples
/// would defeat the linear-memory claims under test.
class RunningStats {
public:
    void add(double x) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return count_; }
    [[nodiscard]] double mean() const noexcept { return count_ > 0 ? mean_ : 0.0; }
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    [[nodiscard]] double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
    [[nodiscard]] double max() const noexcept { return count_ > 0 ? max_ : 0.0; }
    [[nodiscard]] double sum() const noexcept { return sum_; }

    /// Merge another accumulator (Chan et al. parallel variance update).
    void merge(const RunningStats& other) noexcept;

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Sample-storing summary: exact percentiles for bench reporting.
class Summary {
public:
    void add(double x) { samples_.push_back(x); }
    void reserve(std::size_t n) { samples_.reserve(n); }

    [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;
    [[nodiscard]] double mean() const;
    [[nodiscard]] double median() const;
    /// Percentile by nearest-rank on the sorted sample set; q in [0,1].
    [[nodiscard]] double percentile(double q) const;

private:
    void ensure_sorted() const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;
};

/// Power-of-two bucketed histogram for degree distributions.
class Log2Histogram {
public:
    void add(std::uint64_t value);
    /// Bucket-wise sum with another histogram (buckets grow as needed), so
    /// per-rank histograms can be reduced into a machine-wide one.
    void merge(const Log2Histogram& other);
    [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept { return buckets_; }
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
    [[nodiscard]] std::string to_string() const;

private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t total_ = 0;
};

}  // namespace katric
