#pragma once

/// Clang thread-safety-analysis annotation macros (KATRIC_GUARDED_BY,
/// KATRIC_REQUIRES, KATRIC_ACQUIRE/RELEASE, KATRIC_CAPABILITY, …).
///
/// On Clang with -Wthread-safety these expand to the capability attributes,
/// turning the locking discipline of the concurrency layer — Engine's
/// reader-writer hold on the warm views, the serve worker pool's stats, the
/// admission queue, the obs registry/tracer — into compile-time contracts:
/// an unguarded access to an annotated member, or a call into a
/// KATRIC_REQUIRES function without the capability, is a build error under
/// -Werror=thread-safety (the CI static-analysis job). On every other
/// compiler the macros expand to nothing, verified by the negative-
/// compilation harness in tests/static/.
///
/// Annotate with the wrapper types from util/sync.hpp (util::Mutex,
/// util::SharedMutex, and their scoped locks): the analysis only follows
/// lock/unlock calls that are themselves annotated, which the standard
/// library's mutexes are not on libstdc++. Conventions and the escape-hatch
/// policy (KATRIC_NO_THREAD_SAFETY_ANALYSIS) live in docs/static-analysis.md.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define KATRIC_THREAD_ANNOTATION__(x) __attribute__((x))
#endif
#endif
#ifndef KATRIC_THREAD_ANNOTATION__
#define KATRIC_THREAD_ANNOTATION__(x)  // no-op off Clang
#endif

/// Declares a type to be a capability ("mutex" in diagnostics).
#define KATRIC_CAPABILITY(x) KATRIC_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define KATRIC_SCOPED_CAPABILITY KATRIC_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable only with `x` held shared, writable only with `x`
/// held exclusively.
#define KATRIC_GUARDED_BY(x) KATRIC_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer itself is
/// unguarded).
#define KATRIC_PT_GUARDED_BY(x) KATRIC_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function precondition: caller holds the capability exclusively (and still
/// does on return).
#define KATRIC_REQUIRES(...) \
    KATRIC_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function precondition: caller holds the capability at least shared.
#define KATRIC_REQUIRES_SHARED(...) \
    KATRIC_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability exclusively and does not release it.
#define KATRIC_ACQUIRE(...) \
    KATRIC_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function acquires the capability shared and does not release it.
#define KATRIC_ACQUIRE_SHARED(...) \
    KATRIC_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (exclusive hold; no argument on a scoped
/// capability's destructor releases whatever that object holds).
#define KATRIC_RELEASE(...) \
    KATRIC_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function releases a shared hold on the capability.
#define KATRIC_RELEASE_SHARED(...) \
    KATRIC_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Function tries to acquire the capability; the first argument is the
/// return value that means success.
#define KATRIC_TRY_ACQUIRE(...) \
    KATRIC_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Function must be called with the capability NOT held (deadlock guard for
/// non-reentrant locks).
#define KATRIC_EXCLUDES(...) KATRIC_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability (annotated accessor
/// pattern).
#define KATRIC_RETURN_CAPABILITY(x) KATRIC_THREAD_ANNOTATION__(lock_returned(x))

/// Runtime assertion that the capability is held; informs the analysis
/// without acquiring.
#define KATRIC_ASSERT_CAPABILITY(x) \
    KATRIC_THREAD_ANNOTATION__(assert_capability(x))
#define KATRIC_ASSERT_SHARED_CAPABILITY(x) \
    KATRIC_THREAD_ANNOTATION__(assert_shared_capability(x))

/// Turns the analysis off for one function body. Policy: every use carries a
/// comment naming the invariant that holds instead and why the static model
/// cannot express it (see docs/static-analysis.md) — the domain linter's
/// review surface for escape hatches.
#define KATRIC_NO_THREAD_SAFETY_ANALYSIS \
    KATRIC_THREAD_ANNOTATION__(no_thread_safety_analysis)
