#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace katric {

/// Minimal command-line parser for benches and examples. Supports
/// `--name value`, `--name=value`, and boolean `--flag`. Unknown arguments
/// are an error so typos in sweep parameters fail loudly instead of
/// silently benchmarking the defaults.
class CliParser {
public:
    CliParser(std::string program, std::string description);

    /// Declares an option with a default; returns *this for chaining.
    CliParser& option(const std::string& name, const std::string& default_value,
                      const std::string& help);
    CliParser& flag(const std::string& name, const std::string& help);

    /// Parses argv. Returns false (after printing usage) iff --help was given.
    /// Throws assertion_error on unknown options or missing values. A
    /// repeated option keeps the last value and is recorded in duplicates()
    /// so callers that want strictness (Config::try_from_flags) can reject it.
    bool parse(int argc, const char* const* argv);

    /// True iff option/flag `name` was declared on this parser.
    [[nodiscard]] bool declared(const std::string& name) const noexcept {
        return options_.contains(name);
    }
    /// Whether a declared name is a boolean flag (no value token).
    [[nodiscard]] bool is_flag(const std::string& name) const;
    /// Options that appeared more than once in the last parse, in first-
    /// repeat order.
    [[nodiscard]] const std::vector<std::string>& duplicates() const noexcept {
        return duplicates_;
    }

    [[nodiscard]] std::string get_string(const std::string& name) const;
    /// True iff the user explicitly passed the option (vs. its default).
    [[nodiscard]] bool was_set(const std::string& name) const;
    [[nodiscard]] std::int64_t get_int(const std::string& name) const;
    [[nodiscard]] std::uint64_t get_uint(const std::string& name) const;
    [[nodiscard]] double get_double(const std::string& name) const;
    [[nodiscard]] bool get_flag(const std::string& name) const;
    /// Comma-separated integer list, e.g. "--ps 1,2,4,8".
    [[nodiscard]] std::vector<std::uint64_t> get_uint_list(const std::string& name) const;

    [[nodiscard]] std::string usage() const;

private:
    struct Option {
        std::string default_value;
        std::string help;
        bool is_flag = false;
    };

    std::string program_;
    std::string description_;
    std::map<std::string, Option> options_;
    std::map<std::string, std::string> values_;
    std::vector<std::string> duplicates_;
};

}  // namespace katric
