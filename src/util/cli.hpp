#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace katric {

/// Minimal command-line parser for benches and examples. Supports
/// `--name value`, `--name=value`, and boolean `--flag`. Unknown arguments
/// are an error so typos in sweep parameters fail loudly instead of
/// silently benchmarking the defaults.
class CliParser {
public:
    CliParser(std::string program, std::string description);

    /// Declares an option with a default; returns *this for chaining.
    CliParser& option(const std::string& name, const std::string& default_value,
                      const std::string& help);
    CliParser& flag(const std::string& name, const std::string& help);

    /// Parses argv. Returns false (after printing usage) iff --help was given.
    /// Throws assertion_error on unknown options or missing values.
    bool parse(int argc, const char* const* argv);

    [[nodiscard]] std::string get_string(const std::string& name) const;
    /// True iff the user explicitly passed the option (vs. its default).
    [[nodiscard]] bool was_set(const std::string& name) const;
    [[nodiscard]] std::int64_t get_int(const std::string& name) const;
    [[nodiscard]] std::uint64_t get_uint(const std::string& name) const;
    [[nodiscard]] double get_double(const std::string& name) const;
    [[nodiscard]] bool get_flag(const std::string& name) const;
    /// Comma-separated integer list, e.g. "--ps 1,2,4,8".
    [[nodiscard]] std::vector<std::uint64_t> get_uint_list(const std::string& name) const;

    [[nodiscard]] std::string usage() const;

private:
    struct Option {
        std::string default_value;
        std::string help;
        bool is_flag = false;
    };

    std::string program_;
    std::string description_;
    std::map<std::string, Option> options_;
    std::map<std::string, std::string> values_;
};

}  // namespace katric
