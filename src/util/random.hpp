#pragma once

#include <cstdint>
#include <limits>

#include "util/assert.hpp"

namespace katric {

/// SplitMix64 — used to seed Xoshiro and as a cheap stateless mixer.
/// Reference: Steele, Lea, Flood (2014); public-domain constants.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna). Deterministic, fast, and with
/// 256-bit state — sufficient independence for per-PE generator streams.
class Xoshiro256 {
public:
    using result_type = std::uint64_t;

    explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

    void reseed(std::uint64_t seed) noexcept {
        std::uint64_t sm = seed;
        for (auto& word : state_) { word = splitmix64(sm); }
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    result_type operator()() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound). Lemire's multiply-shift rejection method.
    std::uint64_t next_bounded(std::uint64_t bound) noexcept {
        KATRIC_ASSERT(bound > 0);
        std::uint64_t x = (*this)();
        __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
        auto low = static_cast<std::uint64_t>(m);
        if (low < bound) {
            const std::uint64_t threshold = (0ULL - bound) % bound;
            while (low < threshold) {
                x = (*this)();
                m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
                low = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /// Uniform double in [0, 1) with 53 bits of entropy.
    double next_double() noexcept {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    double next_double(double lo, double hi) noexcept {
        return lo + (hi - lo) * next_double();
    }

    /// Bernoulli trial with success probability prob.
    bool next_bool(double prob) noexcept { return next_double() < prob; }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4]{};
};

/// Derives an independent stream seed for (base_seed, stream). Used so every
/// simulated PE generates its slice of a graph from the same global seed
/// without coordination — mirroring KaGen's communication-free design.
constexpr std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t stream) noexcept {
    std::uint64_t s = base_seed ^ (0x9e3779b97f4a7c15ULL + stream * 0xda942042e4dd58b5ULL);
    (void)splitmix64(s);
    return splitmix64(s);
}

}  // namespace katric
