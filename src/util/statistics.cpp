#include "util/statistics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace katric {

void RunningStats::add(double x) noexcept {
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
    if (other.count_ == 0) { return; }
    if (count_ == 0) {
        *this = other;
        return;
    }
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = n1 + n2;
    mean_ += delta * n2 / total;
    m2_ += other.m2_ + delta * delta * n1 * n2 / total;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void Summary::ensure_sorted() const {
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double Summary::min() const {
    KATRIC_ASSERT(!samples_.empty());
    ensure_sorted();
    return samples_.front();
}

double Summary::max() const {
    KATRIC_ASSERT(!samples_.empty());
    ensure_sorted();
    return samples_.back();
}

double Summary::mean() const {
    KATRIC_ASSERT(!samples_.empty());
    double total = 0.0;
    for (double s : samples_) { total += s; }
    return total / static_cast<double>(samples_.size());
}

double Summary::median() const { return percentile(0.5); }

double Summary::percentile(double q) const {
    KATRIC_ASSERT(!samples_.empty());
    KATRIC_ASSERT(q >= 0.0 && q <= 1.0);
    ensure_sorted();
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples_.size())));
    const std::size_t index = rank == 0 ? 0 : rank - 1;
    return samples_[std::min(index, samples_.size() - 1)];
}

void Log2Histogram::add(std::uint64_t value) {
    const std::size_t bucket = value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
    if (bucket >= buckets_.size()) { buckets_.resize(bucket + 1, 0); }
    ++buckets_[bucket];
    ++total_;
}

void Log2Histogram::merge(const Log2Histogram& other) {
    if (other.buckets_.size() > buckets_.size()) { buckets_.resize(other.buckets_.size(), 0); }
    for (std::size_t i = 0; i < other.buckets_.size(); ++i) { buckets_[i] += other.buckets_[i]; }
    total_ += other.total_;
}

std::string Log2Histogram::to_string() const {
    std::ostringstream out;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0) { continue; }
        const std::uint64_t lo = i == 0 ? 0 : (1ULL << (i - 1));
        const std::uint64_t hi = i == 0 ? 0 : (1ULL << i) - 1;
        out << '[' << lo << ',' << hi << "]: " << buckets_[i] << '\n';
    }
    return out.str();
}

}  // namespace katric
