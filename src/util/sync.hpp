#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.hpp"

namespace katric::util {

/// Annotated wrappers over the standard mutexes. The thread-safety analysis
/// only follows lock/unlock calls that carry capability attributes, which
/// libstdc++'s std::mutex/std::shared_mutex do not — so the concurrency
/// layer locks through these instead. Zero overhead: every method is an
/// inline forward to the wrapped standard primitive.

/// std::mutex with capability annotations. Lock it with MutexLock (or
/// lock/unlock directly inside KATRIC_ACQUIRE/RELEASE-annotated code).
class KATRIC_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() KATRIC_ACQUIRE() { mutex_.lock(); }
    void unlock() KATRIC_RELEASE() { mutex_.unlock(); }
    bool try_lock() KATRIC_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

    /// The wrapped handle, for interop that cannot go through the annotated
    /// surface (CondVar's adopt-lock dance). Holding discipline is the
    /// caller's annotated contract, not the handle's.
    [[nodiscard]] std::mutex& native() noexcept { return mutex_; }

private:
    std::mutex mutex_;
};

/// std::shared_mutex with capability annotations: exclusive for writers
/// (Engine's cold builds, hub rebuilds), shared for readers (warm queries
/// over the const views).
class KATRIC_CAPABILITY("shared_mutex") SharedMutex {
public:
    SharedMutex() = default;
    SharedMutex(const SharedMutex&) = delete;
    SharedMutex& operator=(const SharedMutex&) = delete;

    void lock() KATRIC_ACQUIRE() { mutex_.lock(); }
    void unlock() KATRIC_RELEASE() { mutex_.unlock(); }
    void lock_shared() KATRIC_ACQUIRE_SHARED() { mutex_.lock_shared(); }
    void unlock_shared() KATRIC_RELEASE_SHARED() { mutex_.unlock_shared(); }

private:
    std::shared_mutex mutex_;
};

/// Scoped exclusive hold on a Mutex (std::lock_guard shape).
class KATRIC_SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& mutex) KATRIC_ACQUIRE(mutex) : mutex_(mutex) {
        mutex_.lock();
    }
    ~MutexLock() KATRIC_RELEASE() { mutex_.unlock(); }
    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

private:
    Mutex& mutex_;
};

/// Scoped exclusive hold on a SharedMutex (the writer side).
class KATRIC_SCOPED_CAPABILITY WriterLock {
public:
    explicit WriterLock(SharedMutex& mutex) KATRIC_ACQUIRE(mutex) : mutex_(mutex) {
        mutex_.lock();
    }
    ~WriterLock() KATRIC_RELEASE() { mutex_.unlock(); }
    WriterLock(const WriterLock&) = delete;
    WriterLock& operator=(const WriterLock&) = delete;

private:
    SharedMutex& mutex_;
};

/// Scoped shared hold on a SharedMutex (the reader side).
class KATRIC_SCOPED_CAPABILITY ReaderLock {
public:
    explicit ReaderLock(SharedMutex& mutex) KATRIC_ACQUIRE_SHARED(mutex)
        : mutex_(mutex) {
        mutex_.lock_shared();
    }
    ~ReaderLock() KATRIC_RELEASE() { mutex_.unlock_shared(); }
    ReaderLock(const ReaderLock&) = delete;
    ReaderLock& operator=(const ReaderLock&) = delete;

private:
    SharedMutex& mutex_;
};

/// Condition variable usable under an annotated Mutex. wait() requires the
/// caller's hold (so the analysis checks the predicate loop touches guarded
/// state correctly) and preserves it across the block, like
/// std::condition_variable::wait does for its unique_lock.
class CondVar {
public:
    void wait(Mutex& mutex) KATRIC_REQUIRES(mutex) {
        // Borrow the already-held native mutex for the duration of the wait;
        // release() hands ownership back so the annotated hold stays honest.
        std::unique_lock<std::mutex> native(mutex.native(), std::adopt_lock);
        cv_.wait(native);
        native.release();
    }

    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

private:
    std::condition_variable cv_;
};

}  // namespace katric::util
