#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace katric {

/// Exclusive prefix sum; result has size input.size() + 1 with the total in
/// the last slot — the exact shape CSR offset arrays need.
template <typename T>
[[nodiscard]] std::vector<T> exclusive_prefix_sum(std::span<const T> values) {
    std::vector<T> out(values.size() + 1);
    T running{};
    for (std::size_t i = 0; i < values.size(); ++i) {
        out[i] = running;
        running += values[i];
    }
    out[values.size()] = running;
    return out;
}

/// In-place inclusive prefix sum.
template <typename T>
void inclusive_prefix_sum_inplace(std::span<T> values) {
    T running{};
    for (auto& v : values) {
        running += v;
        v = running;
    }
}

}  // namespace katric
