#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

/// Lightweight always-on assertion macros. Unlike <cassert>, these stay
/// active in Release builds: the library's correctness claims (orientation
/// invariants, partition bounds, queue accounting) are cheap relative to the
/// graph work they guard and are part of the public contract.
namespace katric {

/// Thrown by KATRIC_ASSERT / KATRIC_THROW. Derives from std::logic_error so
/// callers can catch precondition violations separately from I/O failures.
class assertion_error : public std::logic_error {
public:
    explicit assertion_error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void assertion_failed(const char* expr, const char* file, int line,
                                          const std::string& msg) {
    std::ostringstream out;
    out << "KATRIC_ASSERT failed: " << expr << " at " << file << ':' << line;
    if (!msg.empty()) { out << " — " << msg; }
    throw assertion_error(out.str());
}
}  // namespace detail

}  // namespace katric

#define KATRIC_ASSERT(expr)                                                       \
    do {                                                                          \
        if (!(expr)) {                                                            \
            ::katric::detail::assertion_failed(#expr, __FILE__, __LINE__, "");    \
        }                                                                         \
    } while (false)

#define KATRIC_ASSERT_MSG(expr, msg)                                              \
    do {                                                                          \
        if (!(expr)) {                                                            \
            std::ostringstream katric_assert_out_;                                \
            katric_assert_out_ << msg;                                            \
            ::katric::detail::assertion_failed(#expr, __FILE__, __LINE__,         \
                                               katric_assert_out_.str());         \
        }                                                                         \
    } while (false)

#define KATRIC_THROW(msg)                                                         \
    do {                                                                          \
        std::ostringstream katric_throw_out_;                                     \
        katric_throw_out_ << msg;                                                 \
        throw ::katric::assertion_error(katric_throw_out_.str());                 \
    } while (false)
