#pragma once

#include <bit>
#include <cstdint>

namespace katric {

/// ⌈log₂ x⌉ for x ≥ 1; 0 for x ∈ {0, 1}. Used for barrier/tree cost terms.
constexpr std::uint32_t ceil_log2(std::uint64_t x) noexcept {
    return x <= 1 ? 0u : static_cast<std::uint32_t>(std::bit_width(x - 1));
}

/// ⌊log₂ x⌋ for x ≥ 1.
constexpr std::uint32_t floor_log2(std::uint64_t x) noexcept {
    return x == 0 ? 0u : static_cast<std::uint32_t>(std::bit_width(x) - 1);
}

constexpr bool is_power_of_two(std::uint64_t x) noexcept {
    return x != 0 && (x & (x - 1)) == 0;
}

/// Smallest power of two ≥ x (x ≥ 1).
constexpr std::uint64_t next_power_of_two(std::uint64_t x) noexcept {
    return x <= 1 ? 1 : std::uint64_t{1} << ceil_log2(x);
}

/// Integer ceiling division.
constexpr std::uint64_t div_ceil(std::uint64_t a, std::uint64_t b) noexcept {
    return (a + b - 1) / b;
}

/// Integer square root (floor).
constexpr std::uint64_t isqrt(std::uint64_t x) noexcept {
    if (x == 0) { return 0; }
    std::uint64_t lo = 1;
    std::uint64_t hi = std::uint64_t{1} << ((std::bit_width(x) + 1) / 2);
    while (lo < hi) {
        const std::uint64_t mid = lo + (hi - lo + 1) / 2;
        if (mid <= x / mid) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    return lo;
}

}  // namespace katric
