#include "util/table.hpp"

#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace katric {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    KATRIC_ASSERT(!headers_.empty());
}

Table& Table::row() {
    if (!rows_.empty()) {
        KATRIC_ASSERT_MSG(rows_.back().size() == headers_.size(),
                          "previous row incomplete: " << rows_.back().size() << " of "
                                                      << headers_.size() << " cells");
    }
    rows_.emplace_back();
    rows_.back().reserve(headers_.size());
    return *this;
}

Table& Table::cell(const std::string& value) {
    KATRIC_ASSERT_MSG(!rows_.empty(), "call row() before cell()");
    KATRIC_ASSERT_MSG(rows_.back().size() < headers_.size(), "row overflow");
    rows_.back().push_back(value);
    return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << value;
    return cell(out.str());
}

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& out) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) { widths[c] = headers_[c].size(); }
    for (const auto& r : rows_) {
        for (std::size_t c = 0; c < r.size(); ++c) {
            widths[c] = std::max(widths[c], r[c].size());
        }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string& text = c < cells.size() ? cells[c] : std::string{};
            out << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
                << std::left << text;
        }
        out << '\n';
    };
    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c) { total += widths[c] + (c == 0 ? 0 : 2); }
    out << std::string(total, '-') << '\n';
    for (const auto& r : rows_) { print_row(r); }
}

std::string Table::to_csv() const {
    std::ostringstream out;
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c > 0) { out << ','; }
            out << cells[c];
        }
        out << '\n';
    };
    emit(headers_);
    for (const auto& r : rows_) { emit(r); }
    return out.str();
}

std::string format_si(double value, int precision) {
    static constexpr const char* suffixes[] = {"", " k", " M", " G", " T", " P"};
    std::size_t index = 0;
    double magnitude = value < 0 ? -value : value;
    while (magnitude >= 1000.0 && index + 1 < std::size(suffixes)) {
        magnitude /= 1000.0;
        value /= 1000.0;
        ++index;
    }
    std::ostringstream out;
    out << std::fixed << std::setprecision(index == 0 ? 0 : precision) << value
        << suffixes[index];
    return out.str();
}

std::string format_words_as_bytes(std::uint64_t words) {
    static constexpr const char* suffixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    double bytes = static_cast<double>(words) * 8.0;
    std::size_t index = 0;
    while (bytes >= 1024.0 && index + 1 < std::size(suffixes)) {
        bytes /= 1024.0;
        ++index;
    }
    std::ostringstream out;
    out << std::fixed << std::setprecision(index == 0 ? 0 : 2) << bytes << ' '
        << suffixes[index];
    return out.str();
}

}  // namespace katric
