#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace katric {

/// Column-aligned text table used by every bench harness to print the
/// rows/series of the paper's tables and figures. Also emits CSV so results
/// can be plotted externally.
class Table {
public:
    explicit Table(std::vector<std::string> headers);

    /// Starts a new row; subsequent cell() calls fill it left to right.
    Table& row();
    Table& cell(const std::string& value);
    Table& cell(const char* value);
    Table& cell(double value, int precision = 3);
    Table& cell(std::uint64_t value);
    Table& cell(std::int64_t value);
    Table& cell(int value);

    [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
    [[nodiscard]] std::size_t num_columns() const noexcept { return headers_.size(); }
    [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const noexcept {
        return rows_;
    }

    void print(std::ostream& out) const;
    [[nodiscard]] std::string to_csv() const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Human-readable quantity formatting: 1234567 -> "1.23 M".
[[nodiscard]] std::string format_si(double value, int precision = 2);

/// Formats a word count as bytes with binary suffix: words*8 -> "1.00 GiB".
[[nodiscard]] std::string format_words_as_bytes(std::uint64_t words);

}  // namespace katric
