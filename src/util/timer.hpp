#pragma once

#include <chrono>

namespace katric {

/// Wall-clock timer for host-side measurements (bench harness bookkeeping).
/// Simulated time inside the machine model is tracked separately by
/// net::Simulator; this class never feeds simulated results.
class WallTimer {
public:
    WallTimer() noexcept { restart(); }

    void restart() noexcept { start_ = Clock::now(); }

    [[nodiscard]] double elapsed_seconds() const noexcept {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    [[nodiscard]] double elapsed_ms() const noexcept { return elapsed_seconds() * 1e3; }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace katric
