#include "util/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "util/assert.hpp"

namespace katric {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

CliParser& CliParser::option(const std::string& name, const std::string& default_value,
                             const std::string& help) {
    options_[name] = Option{default_value, help, /*is_flag=*/false};
    return *this;
}

CliParser& CliParser::flag(const std::string& name, const std::string& help) {
    options_[name] = Option{"false", help, /*is_flag=*/true};
    return *this;
}

bool CliParser::is_flag(const std::string& name) const {
    const auto it = options_.find(name);
    KATRIC_ASSERT_MSG(it != options_.end(), "undeclared option --" << name);
    return it->second.is_flag;
}

bool CliParser::parse(int argc, const char* const* argv) {
    values_.clear();
    duplicates_.clear();
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::cout << usage();
            return false;
        }
        KATRIC_ASSERT_MSG(arg.rfind("--", 0) == 0, "expected --option, got '" << arg << "'");
        arg = arg.substr(2);
        std::string value;
        const auto equals = arg.find('=');
        bool has_inline_value = equals != std::string::npos;
        if (has_inline_value) {
            value = arg.substr(equals + 1);
            arg = arg.substr(0, equals);
        }
        const auto it = options_.find(arg);
        KATRIC_ASSERT_MSG(it != options_.end(), "unknown option --" << arg);
        if (values_.contains(arg)) { duplicates_.push_back(arg); }
        if (it->second.is_flag) {
            values_[arg] = has_inline_value ? value : "true";
        } else if (has_inline_value) {
            values_[arg] = value;
        } else {
            KATRIC_ASSERT_MSG(i + 1 < argc, "missing value for --" << arg);
            values_[arg] = argv[++i];
        }
    }
    return true;
}

std::string CliParser::get_string(const std::string& name) const {
    const auto opt = options_.find(name);
    KATRIC_ASSERT_MSG(opt != options_.end(), "undeclared option --" << name);
    const auto val = values_.find(name);
    return val != values_.end() ? val->second : opt->second.default_value;
}

bool CliParser::was_set(const std::string& name) const {
    KATRIC_ASSERT_MSG(options_.contains(name), "undeclared option --" << name);
    return values_.contains(name);
}

std::int64_t CliParser::get_int(const std::string& name) const {
    return std::stoll(get_string(name));
}

std::uint64_t CliParser::get_uint(const std::string& name) const {
    return std::stoull(get_string(name));
}

double CliParser::get_double(const std::string& name) const {
    return std::stod(get_string(name));
}

bool CliParser::get_flag(const std::string& name) const {
    const std::string value = get_string(name);
    return value == "true" || value == "1" || value == "yes";
}

std::vector<std::uint64_t> CliParser::get_uint_list(const std::string& name) const {
    std::vector<std::uint64_t> result;
    std::stringstream stream(get_string(name));
    std::string token;
    while (std::getline(stream, token, ',')) {
        if (!token.empty()) { result.push_back(std::stoull(token)); }
    }
    return result;
}

std::string CliParser::usage() const {
    std::ostringstream out;
    out << program_ << " — " << description_ << "\n\nOptions:\n";
    for (const auto& [name, opt] : options_) {
        out << "  --" << name;
        if (!opt.is_flag) { out << " <value>"; }
        out << "\n      " << opt.help;
        if (!opt.is_flag) { out << " (default: " << opt.default_value << ")"; }
        out << '\n';
    }
    out << "  --help\n      Print this message.\n";
    return out.str();
}

}  // namespace katric
