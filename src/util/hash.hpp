#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

namespace katric {

/// Fibonacci/Murmur3-style 64-bit finalizer. Good avalanche, no allocation;
/// used for AMQ hash families, colorful-counting colors, and hash maps.
constexpr std::uint64_t hash64(std::uint64_t x) noexcept {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

/// Seeded variant, for independent hash functions h_i(x) = hash64_seeded(x, i).
constexpr std::uint64_t hash64_seeded(std::uint64_t x, std::uint64_t seed) noexcept {
    return hash64(x ^ (seed * 0x9e3779b97f4a7c15ULL + 0xbf58476d1ce4e5b9ULL));
}

/// boost-style combine for composite keys.
constexpr std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) noexcept {
    return h ^ (hash64(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

struct PairHash {
    std::size_t operator()(const std::pair<std::uint64_t, std::uint64_t>& p) const noexcept {
        return static_cast<std::size_t>(hash_combine(hash64(p.first), p.second));
    }
};

}  // namespace katric
