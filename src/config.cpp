#include "config.hpp"

#include <cstdio>
#include <sstream>
#include <utility>

#include "util/assert.hpp"

namespace katric {

namespace {

/// Shortest-exact rendering of a double: %.17g round-trips every finite
/// IEEE-754 value through strtod, which is what the flag round-trip needs.
std::string format_double(double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

std::string format_bool(bool value) { return value ? "1" : "0"; }

/// The sentinel default for the numeric machine-model flags: "take the
/// value from the --network preset".
constexpr const char* kFromPreset = "preset";

/// Preset name whose NetworkConfig equals `network`, or empty.
std::string matching_network_preset(const net::NetworkConfig& network) {
    if (network == net::NetworkConfig::supermuc_like()) { return "supermuc"; }
    if (network == net::NetworkConfig::cloud_like()) { return "cloud"; }
    return "";
}

}  // namespace

std::string partition_strategy_name(core::PartitionStrategy strategy) {
    switch (strategy) {
        case core::PartitionStrategy::kUniformVertices: return "uniform";
        case core::PartitionStrategy::kBalancedEdges: return "balanced";
    }
    KATRIC_THROW("unknown partition strategy");
}

core::PartitionStrategy parse_partition_strategy(const std::string& name) {
    if (name == "uniform") { return core::PartitionStrategy::kUniformVertices; }
    if (name == "balanced") { return core::PartitionStrategy::kBalancedEdges; }
    KATRIC_THROW("unknown partition strategy '" << name << "' (uniform|balanced)");
}

net::NetworkConfig parse_network_preset(const std::string& name) {
    if (name == "supermuc") { return net::NetworkConfig::supermuc_like(); }
    if (name == "cloud") { return net::NetworkConfig::cloud_like(); }
    KATRIC_THROW("unknown network preset '" << name << "' (supermuc|cloud)");
}

core::RunSpec Config::run_spec() const {
    return core::RunSpec{algorithm, num_ranks, network, options, partition};
}

stream::StreamRunSpec Config::stream_spec() const {
    stream::StreamRunSpec spec;
    spec.initial_algorithm = algorithm;
    spec.num_ranks = num_ranks;
    spec.network = network;
    spec.options = options;
    spec.partition = partition;
    spec.indirect = stream_indirect;
    spec.maintain_lcc = maintain_lcc;
    return spec;
}

Config Config::from_run_spec(const core::RunSpec& spec) {
    Config config;
    config.algorithm = spec.algorithm;
    config.num_ranks = spec.num_ranks;
    config.partition = spec.partition;
    config.network = spec.network;
    config.options = spec.options;
    return config;
}

Config Config::from_stream_spec(const stream::StreamRunSpec& spec) {
    Config config = from_run_spec(spec.static_spec());
    config.stream_indirect = spec.indirect;
    config.maintain_lcc = spec.maintain_lcc;
    return config;
}

void Config::register_cli(CliParser& cli) { register_cli(cli, Config{}); }

void Config::register_cli(CliParser& cli, const Config& defaults) {
    const auto preset = matching_network_preset(defaults.network);
    cli.option("algorithm", core::algorithm_name(defaults.algorithm),
               "counting algorithm (DITRIC|DITRIC2|CETRIC|CETRIC2|TriC-style|"
               "HavoqGT-style|EdgeIterator-unbuffered)");
    cli.option("ranks", std::to_string(defaults.num_ranks), "simulated MPI ranks");
    cli.option("partition", partition_strategy_name(defaults.partition),
               "1-D partition strategy (balanced|uniform)");
    cli.option("network", preset.empty() ? "supermuc" : preset,
               "machine-model preset (supermuc|cloud)");
    cli.option("alpha", preset.empty() ? format_double(defaults.network.alpha)
                                       : kFromPreset,
               "message startup latency in seconds (default: from --network)");
    cli.option("beta", preset.empty() ? format_double(defaults.network.beta)
                                      : kFromPreset,
               "per-word transfer time in seconds (default: from --network)");
    cli.option("compute-op", preset.empty() ? format_double(defaults.network.compute_op)
                                            : kFromPreset,
               "per elementary-operation compute time in seconds "
               "(default: from --network)");
    cli.option("memory-limit",
               preset.empty() ? std::to_string(defaults.network.memory_limit_words)
                              : kFromPreset,
               "per-PE buffered-communication budget in words "
               "(default: from --network)");
    cli.option("intersect", seq::intersect_kind_name(defaults.options.intersect),
               "intersection kernel (adaptive|merge|binary|hybrid|galloping|simd|"
               "bitmap)");
    cli.option("hub-threshold", std::to_string(defaults.options.hub_threshold),
               "hub bitmap degree threshold for adaptive/bitmap kernels (0 = auto)");
    cli.option("buffer-threshold",
               std::to_string(defaults.options.buffer_threshold_words),
               "message-queue buffer threshold δ in words (0 = auto O(|E_i|))");
    cli.option("threads", std::to_string(defaults.options.threads),
               "threads per rank for the hybrid local phase");
    cli.option("pes-per-node", std::to_string(defaults.options.pes_per_node),
               "PEs per compute node (HavoqGT-style two-level router)");
    cli.option("compress", format_bool(defaults.options.compress_neighborhoods),
               "delta-varint compression of shipped neighborhoods (0|1)");
    cli.option("detect-termination",
               format_bool(defaults.options.detect_termination),
               "distributed termination detection in the global phase (0|1)");
    cli.option("indirect", format_bool(defaults.stream_indirect),
               "route stream traffic via the grid proxy (0|1)");
    cli.option("maintain-lcc", format_bool(defaults.maintain_lcc),
               "maintain per-vertex Δ/LCC alongside the streaming count (0|1)");
    cli.option("reuse-preprocessing", format_bool(defaults.reuse_preprocessing),
               "warm Engine sessions: build ghost degrees/orientation/hub bitmaps "
               "once and reuse across queries (0|1)");
    cli.option("charge-reused-preprocessing",
               format_bool(defaults.charge_reused_preprocessing),
               "replay recorded preprocessing costs into warm queries for "
               "one-shot metric fidelity (0|1)");
    cli.option("metrics", format_bool(defaults.metrics),
               "collect the observability metrics registry — query latency "
               "p50/p99, comm counters, kernel dispatch mix (0|1)");
    cli.option("trace-out", defaults.trace_out,
               "write Chrome trace-event JSON of every query's phase/superstep "
               "spans to this path (empty = tracing off)");
    cli.option("serve-threads", std::to_string(defaults.serve_threads),
               "Engine::serve worker threads over the shared warm state "
               "(0 = serve-time default of 4)");
    cli.option("queue-depth", std::to_string(defaults.queue_depth),
               "Engine::serve admission-queue capacity; submissions beyond it "
               "are rejected with ServeError::kRejected (0 = default of 64)");
    cli.option("fault-spec", defaults.fault_spec,
               "fault-injection plan, e.g. seed=42;drop=0.01;bitflip=0.005;"
               "crash=2@3 (empty = none; non-empty implies --harden)");
    cli.option("harden", format_bool(defaults.harden),
               "hardened message layer: per-message checksums/sequencing, "
               "dedup, retransmission on detected loss or corruption (0|1)");
    cli.option("recovery", fault::recovery_policy_name(defaults.recovery),
               "policy on unrecoverable faults (fail-fast|retry|degrade)");
    cli.option("max-retries", std::to_string(defaults.max_retries),
               "retransmission budget per frame under retry/degrade recovery");
    cli.option("phase-timeout", format_double(defaults.phase_timeout),
               "simulated-seconds ceiling per superstep; exceeding it is a "
               "typed kTimeout error (0 = off)");
    cli.option("deadline", format_double(defaults.deadline_seconds),
               "default per-query deadline in wall-clock seconds, checked at "
               "superstep boundaries (0 = none)");
    cli.option("amq-fpr", format_double(defaults.amq.target_fpr),
               "Bloom-filter false-positive-rate target for approx_count");
    cli.option("amq-truthful", format_bool(defaults.amq.truthful),
               "apply the false-positive correction to AMQ estimates (0|1)");
    cli.option("amq-adaptive", format_bool(defaults.amq.adaptive),
               "ship exact lists when smaller than the Bloom filter (0|1)");
    cli.option("amq-seed", std::to_string(defaults.amq.seed), "AMQ hash seed");
}

Config Config::from_args(const CliParser& cli) {
    Config config;
    const auto algorithm = core::parse_algorithm(cli.get_string("algorithm"));
    KATRIC_ASSERT_MSG(algorithm.has_value(),
                      "unknown algorithm '" << cli.get_string("algorithm") << "'");
    config.algorithm = *algorithm;
    config.num_ranks = static_cast<graph::Rank>(cli.get_uint("ranks"));
    KATRIC_ASSERT_MSG(config.num_ranks >= 1, "--ranks must be at least 1");
    config.partition = parse_partition_strategy(cli.get_string("partition"));
    config.network = parse_network_preset(cli.get_string("network"));
    // Machine-parameter precedence: an explicitly passed numeric flag wins;
    // otherwise an explicitly passed --network preset wins; otherwise the
    // registered defaults apply (which are numeric literals when register_cli
    // was handed a hand-tuned network, and the "preset" sentinel otherwise).
    const bool network_explicit = cli.was_set("network");
    const auto numeric_applies = [&](const std::string& flag) {
        if (cli.was_set(flag)) { return true; }
        return !network_explicit && cli.get_string(flag) != kFromPreset;
    };
    if (numeric_applies("alpha")) { config.network.alpha = cli.get_double("alpha"); }
    if (numeric_applies("beta")) { config.network.beta = cli.get_double("beta"); }
    if (numeric_applies("compute-op")) {
        config.network.compute_op = cli.get_double("compute-op");
    }
    if (numeric_applies("memory-limit")) {
        config.network.memory_limit_words = cli.get_uint("memory-limit");
    }
    config.options.intersect = seq::parse_intersect_kind(cli.get_string("intersect"));
    config.options.hub_threshold =
        static_cast<graph::Degree>(cli.get_uint("hub-threshold"));
    config.options.buffer_threshold_words = cli.get_uint("buffer-threshold");
    config.options.threads = static_cast<int>(cli.get_uint("threads"));
    config.options.pes_per_node = static_cast<graph::Rank>(cli.get_uint("pes-per-node"));
    config.options.compress_neighborhoods = cli.get_uint("compress") != 0;
    config.options.detect_termination = cli.get_uint("detect-termination") != 0;
    config.stream_indirect = cli.get_uint("indirect") != 0;
    config.maintain_lcc = cli.get_uint("maintain-lcc") != 0;
    config.reuse_preprocessing = cli.get_uint("reuse-preprocessing") != 0;
    config.charge_reused_preprocessing =
        cli.get_uint("charge-reused-preprocessing") != 0;
    config.metrics = cli.get_uint("metrics") != 0;
    config.trace_out = cli.get_string("trace-out");
    config.serve_threads = static_cast<int>(cli.get_uint("serve-threads"));
    config.queue_depth = static_cast<std::size_t>(cli.get_uint("queue-depth"));
    config.fault_spec = cli.get_string("fault-spec");
    if (!config.fault_spec.empty()) {
        // Validate the grammar here so a typo is a typed parse failure, not
        // a surprise mid-query; Engine re-parses the validated spec.
        (void)fault::FaultPlan::parse(config.fault_spec);
    }
    config.harden = cli.get_uint("harden") != 0;
    const auto recovery = fault::parse_recovery_policy(cli.get_string("recovery"));
    KATRIC_ASSERT_MSG(recovery.has_value(), "unknown recovery policy '"
                                                << cli.get_string("recovery")
                                                << "' (fail-fast|retry|degrade)");
    config.recovery = *recovery;
    config.max_retries = static_cast<std::uint32_t>(cli.get_uint("max-retries"));
    config.phase_timeout = cli.get_double("phase-timeout");
    KATRIC_ASSERT_MSG(config.phase_timeout >= 0.0, "--phase-timeout must be >= 0");
    config.deadline_seconds = cli.get_double("deadline");
    KATRIC_ASSERT_MSG(config.deadline_seconds >= 0.0, "--deadline must be >= 0");
    config.amq.target_fpr = cli.get_double("amq-fpr");
    config.amq.truthful = cli.get_uint("amq-truthful") != 0;
    config.amq.adaptive = cli.get_uint("amq-adaptive") != 0;
    config.amq.seed = cli.get_uint("amq-seed");
    return config;
}

std::string config_error_message(ConfigError error, const std::string& detail) {
    switch (error) {
        case ConfigError::kNone: return "";
        case ConfigError::kUnknownFlag:
            return "unknown Config flag '" + detail + "'";
        case ConfigError::kDuplicateFlag:
            return "Config flag '" + detail + "' given more than once";
        case ConfigError::kMissingValue:
            return "Config flag '" + detail + "' is missing its value";
        case ConfigError::kBadValue:
            return "Config flag value rejected: " + detail;
    }
    return "unknown Config parse error";
}

ConfigParse Config::try_from_flags(const std::vector<std::string>& flags) {
    ConfigParse parse;
    const auto fail = [&](ConfigError error, std::string detail) {
        parse.error = error;
        parse.detail = std::move(detail);
        return parse;
    };

    CliParser cli("config", "katric::Config flag parser");
    register_cli(cli);

    // Token pre-scan: reject unknown flags and missing values with a typed
    // error before anything is applied (CliParser alone throws untyped).
    for (std::size_t i = 0; i < flags.size(); ++i) {
        const auto& token = flags[i];
        if (token.rfind("--", 0) != 0) {
            return fail(ConfigError::kBadValue,
                        "'" + token + "' is not a --flag token");
        }
        std::string name = token.substr(2);
        const auto equals = name.find('=');
        const bool has_inline_value = equals != std::string::npos;
        if (has_inline_value) { name = name.substr(0, equals); }
        if (!cli.declared(name)) { return fail(ConfigError::kUnknownFlag, name); }
        if (!has_inline_value && !cli.is_flag(name)) {
            if (i + 1 >= flags.size()) { return fail(ConfigError::kMissingValue, name); }
            ++i;  // the next token is this flag's value
        }
    }

    std::vector<const char*> argv;
    argv.reserve(flags.size() + 1);
    argv.push_back("config");
    for (const auto& flag : flags) { argv.push_back(flag.c_str()); }
    try {
        const bool proceed = cli.parse(static_cast<int>(argv.size()), argv.data());
        if (!proceed) { return fail(ConfigError::kUnknownFlag, "help"); }
        // A repeated flag last-wins inside CliParser; reject it typed here
        // instead of silently applying one of the two values.
        if (!cli.duplicates().empty()) {
            return fail(ConfigError::kDuplicateFlag, cli.duplicates().front());
        }
        parse.config = from_args(cli);
    } catch (const std::exception& e) {
        // Enum parses and numeric conversions reject here (assertion_error /
        // std::invalid_argument from sto*), all with the value in the text.
        return fail(ConfigError::kBadValue, e.what());
    }
    return parse;
}

Config Config::from_flags(const std::vector<std::string>& flags) {
    auto parse = try_from_flags(flags);
    KATRIC_ASSERT_MSG(parse.ok(), parse.message());
    return std::move(*parse.config);
}

std::vector<std::string> Config::to_flags() const {
    std::vector<std::string> flags;
    flags.push_back("--algorithm=" + core::algorithm_name(algorithm));
    flags.push_back("--ranks=" + std::to_string(num_ranks));
    flags.push_back("--partition=" + partition_strategy_name(partition));
    const auto preset = matching_network_preset(network);
    if (!preset.empty()) {
        flags.push_back("--network=" + preset);
    } else {
        // A hand-tuned machine: every model parameter goes explicit so the
        // round-trip is exact regardless of how the config was reached.
        flags.push_back("--network=supermuc");
        flags.push_back("--alpha=" + format_double(network.alpha));
        flags.push_back("--beta=" + format_double(network.beta));
        flags.push_back("--compute-op=" + format_double(network.compute_op));
        flags.push_back("--memory-limit=" + std::to_string(network.memory_limit_words));
    }
    flags.push_back("--intersect=" + seq::intersect_kind_name(options.intersect));
    flags.push_back("--hub-threshold=" + std::to_string(options.hub_threshold));
    flags.push_back("--buffer-threshold="
                    + std::to_string(options.buffer_threshold_words));
    flags.push_back("--threads=" + std::to_string(options.threads));
    flags.push_back("--pes-per-node=" + std::to_string(options.pes_per_node));
    flags.push_back("--compress=" + format_bool(options.compress_neighborhoods));
    flags.push_back("--detect-termination=" + format_bool(options.detect_termination));
    flags.push_back("--indirect=" + format_bool(stream_indirect));
    flags.push_back("--maintain-lcc=" + format_bool(maintain_lcc));
    flags.push_back("--reuse-preprocessing=" + format_bool(reuse_preprocessing));
    flags.push_back("--charge-reused-preprocessing="
                    + format_bool(charge_reused_preprocessing));
    flags.push_back("--metrics=" + format_bool(metrics));
    flags.push_back("--trace-out=" + trace_out);
    flags.push_back("--serve-threads=" + std::to_string(serve_threads));
    flags.push_back("--queue-depth=" + std::to_string(queue_depth));
    flags.push_back("--fault-spec=" + fault_spec);
    flags.push_back("--harden=" + format_bool(harden));
    flags.push_back("--recovery=" + fault::recovery_policy_name(recovery));
    flags.push_back("--max-retries=" + std::to_string(max_retries));
    flags.push_back("--phase-timeout=" + format_double(phase_timeout));
    flags.push_back("--deadline=" + format_double(deadline_seconds));
    flags.push_back("--amq-fpr=" + format_double(amq.target_fpr));
    flags.push_back("--amq-truthful=" + format_bool(amq.truthful));
    flags.push_back("--amq-adaptive=" + format_bool(amq.adaptive));
    flags.push_back("--amq-seed=" + std::to_string(amq.seed));
    return flags;
}

std::string Config::to_command_line() const {
    std::ostringstream out;
    const auto flags = to_flags();
    for (std::size_t i = 0; i < flags.size(); ++i) {
        out << (i == 0 ? "" : " ") << flags[i];
    }
    return out.str();
}

Config Config::preset(const std::string& name) {
    Config config;
    if (name == "default") { return config; }
    if (name == "paper-ditric") {
        config.algorithm = core::Algorithm::kDitric;
        config.num_ranks = 16;
        return config;
    }
    if (name == "paper-cetric") {
        config.algorithm = core::Algorithm::kCetric;
        config.num_ranks = 16;
        return config;
    }
    if (name == "cloud-indirect") {
        // Latency-tolerant regime: grid indirection on a slow interconnect.
        config.algorithm = core::Algorithm::kDitric2;
        config.num_ranks = 16;
        config.network = net::NetworkConfig::cloud_like();
        config.stream_indirect = true;
        return config;
    }
    if (name == "adaptive-kernels") {
        config.algorithm = core::Algorithm::kCetric;
        config.num_ranks = 16;
        config.options.intersect = seq::IntersectKind::kAdaptive;
        return config;
    }
    if (name == "hybrid") {
        config.algorithm = core::Algorithm::kCetric;
        config.num_ranks = 8;
        config.options.threads = 6;
        return config;
    }
    if (name == "streaming-lcc") {
        config.algorithm = core::Algorithm::kCetric;
        config.maintain_lcc = true;
        config.options.intersect = seq::IntersectKind::kAdaptive;
        return config;
    }
    if (name == "approx-adaptive") {
        config.algorithm = core::Algorithm::kCetric;
        config.num_ranks = 16;
        config.amq.adaptive = true;
        return config;
    }
    if (name == "warm-monitor") {
        // Monitoring-style workload: many queries over one graph — build
        // the preprocessing state once, reuse it, skip the re-charge.
        config.algorithm = core::Algorithm::kCetric;
        config.num_ranks = 16;
        config.options.intersect = seq::IntersectKind::kAdaptive;
        config.reuse_preprocessing = true;
        return config;
    }
    if (name == "hardened-serve") {
        // Production-serving posture: warm state, checksummed/retransmitting
        // message layer, retry recovery, and the metrics to watch it all.
        config.algorithm = core::Algorithm::kCetric;
        config.num_ranks = 16;
        config.options.intersect = seq::IntersectKind::kAdaptive;
        config.reuse_preprocessing = true;
        config.harden = true;
        config.recovery = fault::RecoveryPolicy::kRetry;
        config.metrics = true;
        return config;
    }
    KATRIC_THROW("unknown Config preset '" << name << "'");
}

const std::vector<std::string>& Config::preset_names() {
    static const std::vector<std::string> names = {
        "default",          "paper-ditric", "paper-cetric",  "cloud-indirect",
        "adaptive-kernels", "hybrid",       "streaming-lcc", "approx-adaptive",
        "warm-monitor",     "hardened-serve",
    };
    return names;
}

std::string Config::describe() const {
    std::ostringstream out;
    out << core::algorithm_name(algorithm) << " on " << num_ranks << " PEs, "
        << partition_strategy_name(partition) << " partition, intersect="
        << seq::intersect_kind_name(options.intersect) << ", "
        << network.describe();
    return out.str();
}

}  // namespace katric
