#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/approx.hpp"
#include "core/runner.hpp"
#include "fault/fault_plan.hpp"
#include "net/network_config.hpp"
#include "stream/stream_runner.hpp"
#include "util/cli.hpp"

namespace katric {

struct ConfigParse;

/// Typed flag-parse failure (mirroring core::RunError): what
/// Config::try_from_flags reports instead of silently ignoring unknown or
/// duplicated flags.
enum class ConfigError : std::uint8_t {
    kNone = 0,
    kUnknownFlag,    ///< a flag no Config field answers to (typo protection)
    kDuplicateFlag,  ///< the same flag passed twice — ambiguous intent
    kMissingValue,   ///< a value-taking flag at the end of the list
    kBadValue,       ///< a value the field cannot parse
};

[[nodiscard]] std::string config_error_message(ConfigError error,
                                               const std::string& detail);

/// The library's one configuration surface: everything the scattered spec
/// structs (core::RunSpec, stream::StreamRunSpec, core::AlgorithmOptions,
/// core::AmqOptions, the partition strategy, and the network selection) used
/// to carry separately, merged into a single value that
///
///   * an Engine is built from (build state once, run many queries),
///   * round-trips through flags: parse(to_flags(c)) == c for every field
///     (Config::from_flags / Config::from_args / Config::to_flags),
///   * ships named presets (Config::preset) for the common regimes.
///
/// Field defaults match the historical RunSpec defaults, so
/// Config{} ≡ core::RunSpec{}.
struct Config {
    core::Algorithm algorithm = core::Algorithm::kDitric;
    graph::Rank num_ranks = 4;
    core::PartitionStrategy partition = core::PartitionStrategy::kBalancedEdges;
    net::NetworkConfig network = net::NetworkConfig::supermuc_like();
    core::AlgorithmOptions options = {};

    /// Streaming knobs (stream::StreamRunSpec): grid-proxy routing of stream
    /// traffic and per-vertex Δ/LCC maintenance alongside the global count.
    bool stream_indirect = false;
    bool maintain_lcc = false;

    /// Warm-state session (katric::Engine): build ghost degrees, orientation,
    /// and hub bitmaps once at construction and reuse them across queries
    /// instead of re-running the preprocessing front half per query. Counts
    /// and result payloads stay exact; per-query op/time telemetry omits the
    /// preprocessing unless charge_reused_preprocessing re-charges it.
    bool reuse_preprocessing = false;
    /// Metric fidelity for warm sessions: replay the recorded preprocessing
    /// costs into every query's simulated clock and communication counters,
    /// making warm reports bit-identical to one-shot runs while still
    /// skipping the host-side rebuild. Ignored when reuse_preprocessing is
    /// off (cold queries charge the real build anyway).
    bool charge_reused_preprocessing = false;

    /// Observability (src/obs/): collect the metrics registry — per-query
    /// latency summaries, comm counters/histograms, AdaptiveIntersect
    /// dispatch mix — on every Engine query. Off by default; the disabled
    /// path is a null pointer check.
    bool metrics = false;
    /// Observability: when non-empty, record hierarchical spans (query →
    /// phase → superstep, plus per-rank lanes) for every Engine query and
    /// write them to this path as Chrome trace-event JSON on session end
    /// (loadable in chrome://tracing or Perfetto). Engines sharing one path
    /// append to one timeline.
    std::string trace_out;

    /// Serving (Engine::serve): worker threads running submitted queries
    /// against the shared warm state. 0 falls back to the ServeOptions /
    /// built-in default of 4 at session open.
    int serve_threads = 0;
    /// Serving: admission-queue capacity. Submissions beyond this many
    /// waiting requests are rejected with ServeError::kRejected instead of
    /// blocking the submitter. 0 falls back to the default of 64.
    std::size_t queue_depth = 0;

    /// Fault injection (src/fault/): a FaultPlan in the --fault-spec grammar
    /// ("seed=42;drop=0.01;crash=2@3"). Empty = no injection. A non-empty
    /// spec implies the hardened message layer (harden below).
    std::string fault_spec;
    /// Hardened message layer without injection: per-message checksums and
    /// sequence framing, verification + dedup at delivery, retransmission on
    /// detected loss/corruption. Implied by fault_spec; off by default — the
    /// disabled path is one null check per hot path, like obs.
    bool harden = false;
    /// What a query does when the hardened layer detects an unrecoverable
    /// fault: surface it immediately (fail-fast), after the retry budget
    /// (retry), or fall back to the approximate counter (degrade).
    fault::RecoveryPolicy recovery = fault::RecoveryPolicy::kRetry;
    /// Retransmission budget per frame under kRetry/kDegrade; kFailFast
    /// forces 0.
    std::uint32_t max_retries = 3;
    /// Simulated-seconds ceiling per superstep; a phase exceeding it throws
    /// a typed kTimeout instead of silently absorbing a wedged link. 0 = off.
    double phase_timeout = 0.0;
    /// Default per-query deadline in host wall-clock seconds, checked
    /// cooperatively at superstep boundaries; 0 = none. Per-request
    /// deadlines (ServeRequest / QueryOptions) override it.
    double deadline_seconds = 0.0;

    /// Approximate-counting knobs (Engine::approx_count).
    core::AmqOptions amq = {};

    friend bool operator==(const Config&, const Config&) = default;

    // --- spec interop (the legacy entry points are shims over these) -----
    [[nodiscard]] core::RunSpec run_spec() const;
    [[nodiscard]] stream::StreamRunSpec stream_spec() const;
    [[nodiscard]] static Config from_run_spec(const core::RunSpec& spec);
    [[nodiscard]] static Config from_stream_spec(const stream::StreamRunSpec& spec);

    // --- CLI round-trip --------------------------------------------------
    /// Declares every Config flag on a CliParser, defaulting to `defaults`:
    /// --algorithm --ranks --partition --network --alpha --beta --compute-op
    /// --memory-limit --intersect --hub-threshold --buffer-threshold
    /// --threads --pes-per-node --compress --detect-termination --indirect
    /// --maintain-lcc --reuse-preprocessing --charge-reused-preprocessing
    /// --metrics --trace-out --serve-threads --queue-depth --fault-spec
    /// --harden --recovery --max-retries --phase-timeout --deadline
    /// --amq-fpr --amq-truthful --amq-adaptive --amq-seed.
    static void register_cli(CliParser& cli, const Config& defaults);
    static void register_cli(CliParser& cli);  ///< defaults = Config{}
    /// Reads a parsed CliParser (register_cli must have declared the flags).
    [[nodiscard]] static Config from_args(const CliParser& cli);
    /// Parses `--name=value` / `--name value` strings (register_cli +
    /// CliParser underneath). Unknown flags, duplicated flags, missing
    /// values, and unparsable values throw assertion_error with the typed
    /// ConfigError's message; use try_from_flags for the non-throwing form.
    [[nodiscard]] static Config from_flags(const std::vector<std::string>& flags);
    /// Non-throwing parse with a typed error (mirroring core::RunError):
    /// duplicate and unknown flags are rejected instead of silently
    /// last-winning / leaking through as untyped asserts.
    [[nodiscard]] static ConfigParse try_from_flags(
        const std::vector<std::string>& flags);
    /// Serializes to flags that from_flags parses back to an equal Config.
    [[nodiscard]] std::vector<std::string> to_flags() const;
    /// to_flags joined with spaces — the shell-pasteable form.
    [[nodiscard]] std::string to_command_line() const;

    // --- presets ---------------------------------------------------------
    /// Named presets: "default", "paper-ditric", "paper-cetric",
    /// "cloud-indirect", "adaptive-kernels", "hybrid", "streaming-lcc",
    /// "approx-adaptive", "warm-monitor", "hardened-serve". Unknown names
    /// throw.
    [[nodiscard]] static Config preset(const std::string& name);
    [[nodiscard]] static const std::vector<std::string>& preset_names();

    /// One-line human summary (bench headers).
    [[nodiscard]] std::string describe() const;
};

/// Result of Config::try_from_flags: either a parsed Config or a typed
/// error naming the offending flag — never a silently half-applied config.
struct ConfigParse {
    std::optional<Config> config;  ///< engaged iff ok()
    ConfigError error = ConfigError::kNone;
    std::string detail;  ///< the offending flag or value

    [[nodiscard]] bool ok() const noexcept { return error == ConfigError::kNone; }
    [[nodiscard]] std::string message() const {
        return config_error_message(error, detail);
    }
};

/// Names for the partition strategies ("balanced" / "uniform") and back.
[[nodiscard]] std::string partition_strategy_name(core::PartitionStrategy strategy);
[[nodiscard]] core::PartitionStrategy parse_partition_strategy(const std::string& name);

/// Network preset lookup ("supermuc" / "cloud"); unknown names throw.
[[nodiscard]] net::NetworkConfig parse_network_preset(const std::string& name);

}  // namespace katric
