#include "engine.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "stream/incremental.hpp"
#include "stream/incremental_lcc.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace katric {

namespace {

Config validated(Config config) {
    KATRIC_ASSERT_MSG(config.num_ranks >= 1, "Engine needs at least one rank");
    return config;
}

graph::Partition1D validated_partition(graph::Partition1D partition,
                                       const graph::CsrGraph& graph,
                                       const Config& config) {
    KATRIC_ASSERT_MSG(partition.num_ranks() == config.num_ranks,
                      "injected partition has " << partition.num_ranks()
                          << " ranks, Config::num_ranks is " << config.num_ranks);
    KATRIC_ASSERT_MSG(partition.num_vertices() == graph.num_vertices(),
                      "injected partition covers " << partition.num_vertices()
                          << " vertices, graph has " << graph.num_vertices());
    return partition;
}

/// Folds the machine's per-PE compute counters into a report's telemetry.
void accumulate_ops(Report& report, const net::Simulator& sim) {
    for (const auto& metrics : sim.rank_metrics()) {
        report.total_compute_ops += metrics.compute_ops;
        report.max_compute_ops = std::max(report.max_compute_ops, metrics.compute_ops);
    }
}

}  // namespace

// --- Engine ------------------------------------------------------------

// Constructor bodies run pre-publication — no other thread can hold
// state_mutex_ yet, and thread-safety analysis treats constructors as
// unchecked — so warm_build() runs without (and must not take) the lock.

Engine::Engine(const graph::CsrGraph& graph, Config config)
    : graph_(&graph),
      config_(validated(std::move(config))),
      partition_(core::make_partition(graph, config_.run_spec())),
      obs_(obs::Observability::acquire(config_.metrics, config_.trace_out)),
      views_(graph::distribute(graph, partition_)) {
    if (!config_.fault_spec.empty()) {
        injector_.emplace(fault::FaultPlan::parse(config_.fault_spec));
    }
    warm_build();
    warm_enabled_ = warm_.has_value();
}

Engine::Engine(const graph::CsrGraph& graph, Config config, graph::Partition1D partition)
    : graph_(&graph),
      config_(validated(std::move(config))),
      partition_(validated_partition(std::move(partition), graph, config_)),
      obs_(obs::Observability::acquire(config_.metrics, config_.trace_out)),
      views_(graph::distribute(graph, partition_)) {
    if (!config_.fault_spec.empty()) {
        injector_.emplace(fault::FaultPlan::parse(config_.fault_spec));
    }
    warm_build();
    warm_enabled_ = warm_.has_value();
}

void Engine::arm_simulator(net::Simulator& sim, const QueryOptions& query,
                           QueryGuard& guard) {
    const double deadline = query.deadline_seconds.value_or(config_.deadline_seconds);
    const bool wants_cancel = deadline > 0.0 || query.cancel != nullptr;
    const bool wants_harden = hardening_enabled();
    const bool wants_timeout = config_.phase_timeout > 0.0;
    if (!wants_harden && !wants_cancel && !wants_timeout) {
        return;  // the zero-overhead path
    }
    if (deadline > 0.0) { guard.token.set_deadline_in(deadline); }
    if (query.cancel != nullptr) { guard.token.chain(query.cancel); }
    net::HardenOptions harden;
    // Deadline/cancel without --harden arms only the superstep boundary
    // check — no framing, no checksum cost on the payload path.
    harden.frame = wants_harden;
    if (wants_harden) {
        harden.injector = injector_ ? &*injector_ : nullptr;
        harden.stats = &guard.stats;
    }
    harden.cancel = wants_cancel ? &guard.token : nullptr;
    const auto policy = query.recovery.value_or(config_.recovery);
    harden.max_retries =
        policy == fault::RecoveryPolicy::kFailFast ? 0 : config_.max_retries;
    harden.phase_timeout = config_.phase_timeout;
    sim.harden(harden);
    guard.armed = true;
}

void Engine::record_faults(Report& report, const QueryGuard& guard) {
    if (!guard.armed) { return; }
    report.hardened = hardening_enabled();
    report.faults = guard.stats;
    if (obs_ && obs_->metrics_enabled()) {
        auto& registry = obs_->registry();
        registry.count("fault.frames_sent", guard.stats.frames_sent);
        if (const auto injected = guard.stats.injected_total(); injected > 0) {
            registry.count("fault.injected", injected);
        }
        if (guard.stats.corrupt_detected > 0) {
            registry.count("fault.corrupt_detected", guard.stats.corrupt_detected);
        }
        if (guard.stats.duplicates_suppressed > 0) {
            registry.count("fault.duplicates_suppressed",
                           guard.stats.duplicates_suppressed);
        }
        if (guard.stats.retransmits > 0) {
            registry.count("fault.retransmits", guard.stats.retransmits);
        }
        if (report.error.domain == Error::Domain::kNet) {
            registry.count("fault.query_failed");
        }
        if (report.degraded) { registry.count("fault.query_degraded"); }
    }
}

std::string Engine::metrics_summary() const { return obs_ ? obs_->summary() : ""; }

void Engine::warm_build() {
    if (!config_.reuse_preprocessing) { return; }
    warm_.emplace();
    // One throwaway machine pays the front half — ghost-degree exchange,
    // orientation, hub bitmaps when the configured kernels want them — on
    // the shared views, recording the cost ledger for later replay.
    WallTimer timer;
    net::Simulator sim(config_.num_ranks, config_.network);
    if (obs_) { sim.record_phase_details(true); }
    try {
        core::run_preprocessing(sim, views_, config_.options, &warm_->costs);
    } catch (const net::OomError&) {
        // The front half itself blew the per-PE memory budget. Fall back to
        // a cold session so the OOM surfaces per query as Report::count.oom
        // — exactly what the same workload reports with reuse off.
        warm_.reset();
        return;
    }
    ++preprocess_builds_;
    // The warm build is part of the session's observable timeline even
    // though no query ran it — later skip-mode queries have no
    // preprocessing spans of their own.
    if (obs_) { obs_->observe_query("warm_build", sim, timer.elapsed_seconds()); }
}

namespace {

/// The baselines never build the index (TriC skips preprocessing, the
/// HavoqGT wedge baseline preprocesses as if on the merge kernel).
bool spec_wants_hubs(const core::RunSpec& spec) {
    return core::uses_hub_bitmaps(spec.options.intersect)
           && spec.algorithm != core::Algorithm::kTricStyle
           && spec.algorithm != core::Algorithm::kHavoqgtStyle;
}

}  // namespace

bool Engine::warm_hubs_current(const core::RunSpec& spec) const {
    if (!spec_wants_hubs(spec)) { return true; }
    for (const auto& view : views_) {
        seq::HubBitmapIndex::Config hub;
        hub.degree_threshold = core::resolve_hub_threshold(spec.options, view);
        hub.universe = view.partition().num_vertices();
        if (!view.hub_index_current(hub)) { return false; }
    }
    return true;
}

void Engine::rebuild_warm_hubs(const core::RunSpec& spec) {
    bool rebuilt = false;
    for (std::size_t r = 0; r < views_.size(); ++r) {
        auto& view = views_[r];
        seq::HubBitmapIndex::Config hub;
        hub.degree_threshold = core::resolve_hub_threshold(spec.options, view);
        hub.universe = view.partition().num_vertices();
        if (view.hub_index_current(hub)) { continue; }
        // Host-side rebuild; the ledger entry keeps a warm metric-fidelity
        // replay charging exactly what a cold build of this config would.
        warm_->costs.hub_build_ops[r] = view.build_hub_bitmaps(hub);
        rebuilt = true;
    }
    if (rebuilt) { ++preprocess_builds_; }
}

core::Preprocess Engine::preprocess_policy(const QueryOptions& query) const {
    core::Preprocess prep;  // cold default: build + charge inside the run
    if (warm_) {
        const bool charge = query.charge_preprocessing.value_or(
            config_.charge_reused_preprocessing);
        prep.mode = charge ? core::Preprocess::Mode::kCharge
                           : core::Preprocess::Mode::kSkip;
        prep.costs = &warm_->costs;
    }
    return prep;
}

core::RunSpec Engine::query_spec(const QueryOptions& query) const {
    auto spec = config_.run_spec();
    if (query.algorithm) { spec.algorithm = *query.algorithm; }
    if (query.options) { spec.options = *query.options; }
    // The dispatch-mix sink is wired per query (a stack-local KernelStats in
    // each query method, merged on finalize) — never Config itself, so flag
    // round-trips and option equality stay pure, and concurrent queries
    // never share a recording sink.
    spec.options.kernel_stats = nullptr;
    return spec;
}

void Engine::finalize(Report& report, const net::Simulator& sim, double wall_seconds,
                      const obs::KernelStats* kernel_stats) {
    accumulate_ops(report, sim);
    report.phases = net::aggregate_phase_times(sim.phases());
    if (report.count.error != core::RunError::kNone) {
        report.error = make_error(report.count.error, report.algorithm);
    }
    if (obs_) {
        obs_->observe_query(query_name(report.query), sim, wall_seconds, kernel_stats);
    }
    queries_.fetch_add(1, std::memory_order_relaxed);
}

Report Engine::count(const core::TriangleSink* sink, const QueryOptions& query) {
    WallTimer timer;
    auto spec = query_spec(query);
    // Query-local dispatch-mix recording: merged into the session totals on
    // finalize, so concurrent queries never write one shared sink.
    obs::KernelStats kernel_stats;
    const bool record_kernels = obs_ && obs_->metrics_enabled();
    if (record_kernels) { spec.options.kernel_stats = &kernel_stats; }
    Report report;
    report.query = Query::kCount;
    report.algorithm = spec.algorithm;
    // The guard is declared before the simulator everywhere: arm_simulator
    // lends the simulator the guard's stats/cancel pointers, so the borrower
    // must be destroyed first.
    QueryGuard guard;
    net::Simulator sim(spec.num_ranks, spec.network);
    if (obs_) { sim.record_phase_details(true); }
    // Warm fast path: shared hold when the views already fit the spec. A
    // cold engine (or a warm hub-config change) falls through to the
    // exclusive hold, re-checks (another thread may have rebuilt in the
    // unlock window), rebuilds if still needed, and runs under it. Both
    // holds end before the degrade fallback below re-enters the engine —
    // re-locking on the same thread would deadlock on cold engines.
    bool ran = false;
    if (warm_enabled_) {
        const util::ReaderLock lock(state_mutex_);
        if (warm_hubs_current(spec)) {
            count_body(report, sim, spec, query, sink, guard);
            ran = true;
        }
    }
    if (!ran) {
        const util::WriterLock lock(state_mutex_);
        if (warm_enabled_ && !warm_hubs_current(spec)) { rebuild_warm_hubs(spec); }
        count_body(report, sim, spec, query, sink, guard);
    }
    record_faults(report, guard);
    finalize(report, sim, timer.elapsed_seconds(),
             record_kernels ? &kernel_stats : nullptr);
    if (sink == nullptr && report.error.domain == Error::Domain::kNet
        && query.recovery.value_or(config_.recovery)
               == fault::RecoveryPolicy::kDegrade) {
        // Graceful degradation: the exact count could not be recovered, so
        // answer with the AMQ estimate — computed with injection off (the
        // faulty schedule already had its retries) — and say so explicitly.
        Report fallback = approx_impl(query, /*arm=*/false);
        fallback.query = Query::kCount;
        fallback.degraded = true;
        fallback.hardened = report.hardened;
        fallback.faults = report.faults;  // what the failed exact attempt saw
        if (obs_ && obs_->metrics_enabled()) {
            obs_->registry().count("fault.query_degraded");
        }
        return fallback;
    }
    return report;
}

void Engine::count_body(Report& report, net::Simulator& sim, const core::RunSpec& spec,
                        const QueryOptions& query, const core::TriangleSink* sink,
                        QueryGuard& guard) {
    const auto prep = preprocess_policy(query);
    report.reused_preprocessing = prep.mode == core::Preprocess::Mode::kSkip;
    arm_simulator(sim, query, guard);
    try {
        report.count = core::dispatch_algorithm(sim, locked_views(), spec, sink, prep);
    } catch (const net::OomError&) {
        report.count.oom = true;
        core::fill_metrics(sim, report.count);
    } catch (const net::FaultError& e) {
        report.error = make_error(e.code(), e.what());
        core::fill_metrics(sim, report.count);
    } catch (const net::CancelledError&) {
        report.error = make_error(ServeError::kDeadline);
        core::fill_metrics(sim, report.count);
    }
}

Report Engine::lcc(const QueryOptions& query) {
    WallTimer timer;
    auto spec = query_spec(query);
    obs::KernelStats kernel_stats;
    const bool record_kernels = obs_ && obs_->metrics_enabled();
    if (record_kernels) { spec.options.kernel_stats = &kernel_stats; }
    Report report;
    report.query = Query::kLcc;
    report.algorithm = spec.algorithm;
    QueryGuard guard;
    net::Simulator sim(spec.num_ranks, spec.network);
    if (obs_) { sim.record_phase_details(true); }
    bool ran = false;
    if (warm_enabled_) {
        const util::ReaderLock lock(state_mutex_);
        if (warm_hubs_current(spec)) {
            lcc_body(report, sim, spec, query, guard);
            ran = true;
        }
    }
    if (!ran) {
        const util::WriterLock lock(state_mutex_);
        if (warm_enabled_ && !warm_hubs_current(spec)) { rebuild_warm_hubs(spec); }
        lcc_body(report, sim, spec, query, guard);
    }
    record_faults(report, guard);
    finalize(report, sim, timer.elapsed_seconds(),
             record_kernels ? &kernel_stats : nullptr);
    return report;
}

void Engine::lcc_body(Report& report, net::Simulator& sim, const core::RunSpec& spec,
                      const QueryOptions& query, QueryGuard& guard) {
    const auto prep = preprocess_policy(query);
    report.reused_preprocessing = prep.mode == core::Preprocess::Mode::kSkip;
    arm_simulator(sim, query, guard);
    try {
        auto result =
            core::compute_distributed_lcc(sim, locked_views(), *graph_, spec, prep);
        report.count = std::move(result.count);
        report.delta = std::move(result.delta);
        report.lcc = std::move(result.lcc);
        report.postprocess_time = result.postprocess_time;
    } catch (const net::FaultError& e) {
        report.error = make_error(e.code(), e.what());
        core::fill_metrics(sim, report.count);
    } catch (const net::CancelledError&) {
        report.error = make_error(ServeError::kDeadline);
        core::fill_metrics(sim, report.count);
    }
}

Report Engine::enumerate(const core::TriangleSink* sink, const QueryOptions& query) {
    std::vector<core::Triangle> triangles;
    std::vector<std::size_t> found_per_rank(config_.num_ranks, 0);
    const core::TriangleSink collector = [&](core::Rank finder, core::VertexId v,
                                             core::VertexId u, core::VertexId w) {
        core::Triangle t{v, u, w};
        if (t.a > t.b) { std::swap(t.a, t.b); }
        if (t.b > t.c) { std::swap(t.b, t.c); }
        if (t.a > t.b) { std::swap(t.a, t.b); }
        KATRIC_ASSERT_MSG(t.a < t.b && t.b < t.c,
                          "degenerate triangle " << v << ',' << u << ',' << w);
        if (sink != nullptr) {
            (*sink)(finder, v, u, w);
        } else {
            triangles.push_back(t);
        }
        ++found_per_rank[finder];
    };
    Report report = count(&collector, query);
    report.query = Query::kEnumerate;
    if (sink == nullptr && report.ok()) {
        std::sort(triangles.begin(), triangles.end());
        KATRIC_ASSERT_MSG(std::adjacent_find(triangles.begin(), triangles.end())
                              == triangles.end(),
                          "a triangle was enumerated more than once — the "
                          "exactly-once invariant is broken");
        KATRIC_ASSERT(triangles.size() == report.count.triangles);
    }
    report.triangles = std::move(triangles);
    report.found_per_rank = std::move(found_per_rank);
    return report;
}

Report Engine::approx_count(const QueryOptions& query) {
    return approx_impl(query, /*arm=*/true);
}

Report Engine::approx_impl(const QueryOptions& query, bool arm) {
    WallTimer timer;
    auto spec = query_spec(query);
    obs::KernelStats kernel_stats;
    const bool record_kernels = obs_ && obs_->metrics_enabled();
    if (record_kernels) { spec.options.kernel_stats = &kernel_stats; }
    const auto& amq = query.amq ? *query.amq : config_.amq;
    Report report;
    report.query = Query::kApprox;
    // The AMQ query always runs the CETRIC-AMQ pipeline (exact CETRIC local
    // phase + Bloom-filter global phase), whatever Config::algorithm says —
    // label the report (and the warm hub preparation) accordingly.
    report.algorithm = core::Algorithm::kCetric;
    // Hub preparation (and so the lock decision) follows the pipeline's
    // actual algorithm, not Config::algorithm.
    auto hub_spec = spec;
    hub_spec.algorithm = core::Algorithm::kCetric;
    QueryGuard guard;
    net::Simulator sim(spec.num_ranks, spec.network);
    if (obs_) { sim.record_phase_details(true); }
    bool ran = false;
    if (warm_enabled_) {
        const util::ReaderLock lock(state_mutex_);
        if (warm_hubs_current(hub_spec)) {
            approx_body(report, sim, spec, query, amq, arm, guard);
            ran = true;
        }
    }
    if (!ran) {
        const util::WriterLock lock(state_mutex_);
        if (warm_enabled_ && !warm_hubs_current(hub_spec)) {
            rebuild_warm_hubs(hub_spec);
        }
        approx_body(report, sim, spec, query, amq, arm, guard);
    }
    record_faults(report, guard);
    finalize(report, sim, timer.elapsed_seconds(),
             record_kernels ? &kernel_stats : nullptr);
    return report;
}

void Engine::approx_body(Report& report, net::Simulator& sim,
                         const core::RunSpec& spec, const QueryOptions& query,
                         const core::AmqOptions& amq, bool arm, QueryGuard& guard) {
    const auto prep = preprocess_policy(query);
    report.reused_preprocessing = prep.mode == core::Preprocess::Mode::kSkip;
    if (arm) { arm_simulator(sim, query, guard); }
    try {
        auto result =
            core::count_triangles_cetric_amq(sim, locked_views(), spec, amq, prep);
        report.count = std::move(result.metrics);
        report.estimated_triangles = result.estimated_triangles;
        report.exact_type12 = result.exact_type12;
        report.estimated_type3 = result.estimated_type3;
    } catch (const net::FaultError& e) {
        report.error = make_error(e.code(), e.what());
        core::fill_metrics(sim, report.count);
    } catch (const net::CancelledError&) {
        report.error = make_error(ServeError::kDeadline);
        core::fill_metrics(sim, report.count);
    }
}

StreamSession Engine::open_stream() {
    core::CountResult initial;
    std::vector<std::uint64_t> initial_delta;
    bool initial_reused = false;
    if (config_.maintain_lcc) {
        // The LCC-enabled static pass supplies both the initial count and
        // the per-vertex Δ seed in one run over the shared views.
        auto seeded = lcc();
        initial = std::move(seeded.count);
        initial_delta = std::move(seeded.delta);
        initial_reused = seeded.reused_preprocessing;
        KATRIC_ASSERT_MSG(initial.error == core::RunError::kNone,
                          core::run_error_message(initial.error, config_.algorithm));
    } else {
        auto seeded = count();
        initial = std::move(seeded.count);
        initial_reused = seeded.reused_preprocessing;
    }
    KATRIC_ASSERT_MSG(!initial.oom, "initial static count ran out of memory");
    return StreamSession(*graph_, partition_, config_, std::move(initial),
                         std::move(initial_delta), initial_reused, obs_);
}

Report Engine::stream(const std::vector<stream::EdgeBatch>& batches,
                      const stream::BatchObserver& observer) {
    auto session = open_stream();
    for (const auto& batch : batches) {
        const auto& stats = session.ingest(batch);
        if (observer) { observer(stats); }
    }
    return session.report();
}

// --- StreamSession ------------------------------------------------------

StreamSession::StreamSession(const graph::CsrGraph& graph,
                             const graph::Partition1D& partition, Config config,
                             core::CountResult initial,
                             std::vector<std::uint64_t> initial_delta,
                             bool initial_reused,
                             std::shared_ptr<obs::Observability> obs)
    : config_(std::move(config)),
      obs_(std::move(obs)),
      initial_(std::move(initial)),
      initial_reused_(initial_reused),
      sim_(std::make_unique<net::Simulator>(config_.num_ranks, config_.network)),
      views_(std::make_unique<std::vector<stream::DynamicDistGraph>>(
          stream::distribute_dynamic(graph, partition))),
      counter_(std::make_unique<stream::IncrementalCounter>(
          *sim_, *views_, config_.options, config_.stream_indirect,
          initial_.triangles)) {
    if (obs_) { sim_->record_phase_details(true); }
    if (config_.harden || !config_.fault_spec.empty()) {
        // Streaming sessions mutate the dynamic views mid-batch, so an
        // injected fault could not abort cleanly — they get the hardened
        // layer's framing/verification/dedup, but never injection (see
        // docs/robustness.md). On a reliable simulated wire this is
        // overhead-only and cannot throw.
        sim_->harden(net::HardenOptions{});
    }
    if (config_.maintain_lcc) {
        lcc_ = std::make_unique<stream::IncrementalLcc>(
            *sim_, *views_, config_.options, config_.stream_indirect, initial_delta);
        lcc_->attach(*counter_);
    }
}

StreamSession::~StreamSession() {
    // The session's simulator accumulates supersteps across every ingested
    // batch; its timeline goes to the trace once, when the session ends.
    // A moved-from session holds no simulator and records nothing.
    if (obs_ && sim_ && obs_->tracing_enabled()) {
        std::ostringstream label;
        label << "stream(" << batches_.size() << " batches)";
        obs_->tracer().record_query(label.str(), *sim_);
    }
}

stream::BatchStats StreamSession::ingest(const stream::EdgeBatch& batch) {
    WallTimer timer;
    const double sim_before = sim_->time();
    auto stats = counter_->apply_batch(batch);
    if (!stats.error.ok()) {
        // Rejected atomically before any superstep: record it (the report's
        // batch log shows the typed error) but run no LCC flush and charge
        // nothing.
        batches_.push_back(stats);
        if (obs_ && obs_->metrics_enabled()) {
            obs_->registry().count("stream.batch_rejected");
        }
        return stats;
    }
    if (lcc_) { stats.lcc_seconds = lcc_->finish_batch(); }
    batches_.push_back(stats);
    if (obs_ && obs_->metrics_enabled()) {
        auto& registry = obs_->registry();
        registry.count("query.stream_ingest");
        registry.observe_latency("query.stream_ingest.latency_seconds",
                                 timer.elapsed_seconds());
        registry.observe_latency("query.stream_ingest.sim_seconds",
                                 sim_->time() - sim_before);
        registry.observe_size("stream.batch_edges", batch.events.size());
    }
    return stats;
}

std::uint64_t StreamSession::triangles() const noexcept { return counter_->triangles(); }

std::vector<std::uint64_t> StreamSession::delta() const {
    KATRIC_ASSERT_MSG(lcc_ != nullptr, "session does not maintain LCC");
    return lcc_->delta();
}

std::vector<double> StreamSession::lcc() const {
    KATRIC_ASSERT_MSG(lcc_ != nullptr, "session does not maintain LCC");
    return lcc_->lcc();
}

graph::CsrGraph StreamSession::materialize_global() const {
    return stream::materialize_global(*views_);
}

Report StreamSession::report() const {
    Report report;
    report.query = Query::kStream;
    report.algorithm = config_.algorithm;
    report.reused_preprocessing = initial_reused_;
    report.count.triangles = counter_->triangles();
    report.initial = initial_;
    report.batches = batches_;
    report.stream_seconds = sim_->time();
    report.phases = net::aggregate_phase_times(sim_->phases());
    accumulate_ops(report, *sim_);
    if (lcc_) {
        report.delta = lcc_->delta();
        report.lcc = lcc_->lcc();
    }
    return report;
}

stream::StreamResult StreamSession::result() const {
    // The legacy shape is a projection of the unified Report.
    auto report = StreamSession::report();
    stream::StreamResult result;
    result.initial = std::move(report.initial);
    result.batches = std::move(report.batches);
    result.triangles = report.count.triangles;
    result.stream_seconds = report.stream_seconds;
    result.delta = std::move(report.delta);
    result.lcc = std::move(report.lcc);
    return result;
}

}  // namespace katric
