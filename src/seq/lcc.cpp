#include "seq/lcc.hpp"

#include "seq/edge_iterator.hpp"
#include "util/assert.hpp"

namespace katric::seq {

using graph::CsrGraph;
using graph::VertexId;

std::vector<double> lcc_from_triangle_counts(const CsrGraph& undirected,
                                             const std::vector<std::uint64_t>& delta) {
    KATRIC_ASSERT(delta.size() == undirected.num_vertices());
    std::vector<double> lcc(delta.size(), 0.0);
    for (VertexId v = 0; v < undirected.num_vertices(); ++v) {
        const auto d = undirected.degree(v);
        if (d >= 2) {
            lcc[v] = 2.0 * static_cast<double>(delta[v])
                     / (static_cast<double>(d) * static_cast<double>(d - 1));
        }
    }
    return lcc;
}

std::vector<double> local_clustering_coefficients(const CsrGraph& undirected,
                                                  IntersectKind kind) {
    return lcc_from_triangle_counts(undirected, per_vertex_triangles(undirected, kind));
}

LccOracle compute_lcc_oracle(const CsrGraph& undirected) {
    LccOracle oracle;
    oracle.delta = per_vertex_triangles(undirected);
    oracle.lcc = lcc_from_triangle_counts(undirected, oracle.delta);
    return oracle;
}

double average_lcc(const CsrGraph& undirected) {
    const auto lcc = local_clustering_coefficients(undirected);
    if (lcc.empty()) { return 0.0; }
    double total = 0.0;
    for (double value : lcc) { total += value; }
    return total / static_cast<double>(lcc.size());
}

}  // namespace katric::seq
