#pragma once

#include "seq/edge_iterator.hpp"

namespace katric::seq {

/// The wider sequential algorithm family surveyed by Ortmann & Brandes
/// ("Triangle listing algorithms: back from the diversion", cited as [12]):
/// beyond the merge-based EDGEITERATOR these serve as cross-checks and as
/// kernels with different op-count profiles for the simulator's cost model.

/// FORWARD (Latapy): process vertices in ≺ order with *dynamic* adjacency
/// sets A(v) that only ever contain already-processed smaller vertices;
/// T += |A(v) ∩ A(u)| before inserting v into A(u). Identical counts to
/// compact-forward, but peak memory is bounded by the processed prefix.
[[nodiscard]] SeqCountResult count_forward(const graph::CsrGraph& undirected);

/// Hashed edge iterator: intersect N⁺(v) with a hash set over N⁺(u) —
/// O(min) expected probes instead of O(|a|+|b|) comparisons. Preferable for
/// very skewed neighborhood sizes.
[[nodiscard]] SeqCountResult count_edge_iterator_hashed(const graph::CsrGraph& undirected);

/// Node iterator: for every vertex, probe all pairs of (oriented) neighbors
/// for the closing edge — the classic O(Σ C(d⁺,2) · log d) baseline, and the
/// kernel the HavoqGT-style distributed baseline parallelizes.
[[nodiscard]] SeqCountResult count_node_iterator(const graph::CsrGraph& undirected);

}  // namespace katric::seq
