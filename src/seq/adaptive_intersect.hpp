#pragma once

#include <span>
#include <vector>

#include "graph/types.hpp"
#include "obs/kernel_stats.hpp"
#include "seq/bitmap_index.hpp"
#include "seq/intersection.hpp"
#include "seq/intersection_simd.hpp"

namespace katric::seq {

/// Per-intersection kernel dispatcher — the one object the counting paths
/// talk to instead of raw IntersectKind plumbing. Given the two operand
/// spans (and, when known, their vertex IDs for hub lookup), it picks:
///
///   kind        | decision
///   ------------+------------------------------------------------------
///   merge       | scalar merge, always
///   binary      | per-element binary probes of the larger side
///   hybrid      | size-ratio choice between merge and binary (paper-era)
///   galloping   | cursor galloping (SIMD front scan when available)
///   simd        | AVX2 block merge (scalar merge when unavailable)
///   bitmap      | identical to adaptive (hub bitmap where indexed, the
///               | size-adaptive choice elsewhere) — kept as a separate
///               | CLI name so runs can document the intent
///   adaptive    | hub bitmap if indexed; else galloping when
///               | probe_search_pays_off(|a|,|b|); else SIMD block merge
///
/// For the bitmap paths, hub∩hub additionally compares the word-AND cost
/// against probing the smaller row and takes the cheaper one. All kernels
/// return exactly the same count/elements; only the measured `ops` — and
/// therefore the simulated compute charge — differ.
///
/// When an obs::KernelStats sink is attached, every call additionally
/// records the kernel that actually fired (bucketed by smaller-operand
/// size) and, on the hub-aware kinds, whether the hub index served the
/// call — the dispatch-mix telemetry behind crossover tuning. With the
/// default null sink the recording branch is a single predictable test.
class AdaptiveIntersect {
public:
    AdaptiveIntersect() = default;
    explicit AdaptiveIntersect(IntersectKind kind, const HubBitmapIndex* hubs = nullptr,
                               obs::KernelStats* stats = nullptr) noexcept
        : kind_(kind), hubs_(hubs), stats_(stats) {}

    [[nodiscard]] IntersectKind kind() const noexcept { return kind_; }
    [[nodiscard]] const HubBitmapIndex* hubs() const noexcept { return hubs_; }
    [[nodiscard]] obs::KernelStats* stats() const noexcept { return stats_; }

    /// Count-only intersection. Pass the operands' vertex IDs when known —
    /// kInvalidVertex (the default) skips hub lookup for that side.
    [[nodiscard]] IntersectResult count(
        std::span<const graph::VertexId> a, std::span<const graph::VertexId> b,
        graph::VertexId a_id = graph::kInvalidVertex,
        graph::VertexId b_id = graph::kInvalidVertex) const;

    /// Collect variant: appends the common elements to `out` in ascending
    /// order (the merge-collect contract, honored by every kernel).
    IntersectResult collect(std::span<const graph::VertexId> a,
                            std::span<const graph::VertexId> b,
                            std::vector<graph::VertexId>& out,
                            graph::VertexId a_id = graph::kInvalidVertex,
                            graph::VertexId b_id = graph::kInvalidVertex) const;

private:
    void note(obs::KernelChoice choice, std::size_t smaller) const noexcept {
        if (stats_ != nullptr) { stats_->record(choice, smaller); }
    }

    IntersectKind kind_ = IntersectKind::kMerge;
    const HubBitmapIndex* hubs_ = nullptr;
    obs::KernelStats* stats_ = nullptr;
};

}  // namespace katric::seq
