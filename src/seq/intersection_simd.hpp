#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "seq/intersection.hpp"

namespace katric::seq {

/// Vectorized intersection kernels (AVX2, 4×64-bit lanes) with runtime CPU
/// dispatch and scalar fallbacks. The build stays portable: compiling with
/// KATRIC_ENABLE_SIMD only *adds* the AVX2 code paths behind
/// function-level target attributes — no -march=native requirement — and
/// every entry point silently degrades to the scalar kernel when the
/// feature is compiled out, the CPU lacks AVX2, or a test forces the
/// scalar path.
///
/// Op-cost calibration: one 4×4 block comparison (4 cmpeq + mask extract +
/// advance) replaces up to 8 scalar merge comparisons but retires in a few
/// instructions, so a block is charged kSimdMergeBlockOps — calibrated
/// against bench_micro_kernels so simulated compute cost keeps tracking
/// real work (see docs/kernels.md). Scalar tail comparisons are charged 1
/// op each, exactly like intersect_merge.
inline constexpr std::uint64_t kSimdMergeBlockOps = 3;

/// True iff the AVX2 paths will actually run: compiled in, CPU supports
/// AVX2, not overridden by force_scalar_simd() or KATRIC_FORCE_SCALAR=1 in
/// the environment (the CI hook for exercising the portable path on SIMD
/// hardware).
[[nodiscard]] bool simd_available() noexcept;

/// Test hook: force (or un-force) the scalar fallbacks regardless of CPU
/// support. The differential tests run every kernel through both paths.
void force_scalar_simd(bool force) noexcept;

/// Shuffle-based block merge: compares 4-element blocks of both inputs
/// all-pairs via lane rotations, advancing the block with the smaller
/// maximum. Exact same result as intersect_merge. Falls back to
/// intersect_merge when simd_available() is false.
[[nodiscard]] IntersectResult intersect_simd_merge(
    std::span<const graph::VertexId> a, std::span<const graph::VertexId> b) noexcept;

/// Collect variant (ascending output, appends to `out`), the SIMD sibling
/// of intersect_merge_collect.
IntersectResult intersect_simd_merge_collect(std::span<const graph::VertexId> a,
                                             std::span<const graph::VertexId> b,
                                             std::vector<graph::VertexId>& out);

/// Galloping probe with a vectorized front scan: each probe first compares
/// one 4-lane window at the shared cursor (1 charged op) and only gallops
/// scalar beyond it. Falls back to intersect_galloping when unavailable.
[[nodiscard]] IntersectResult intersect_simd_galloping(
    std::span<const graph::VertexId> a, std::span<const graph::VertexId> b) noexcept;

IntersectResult intersect_simd_galloping_collect(std::span<const graph::VertexId> a,
                                                 std::span<const graph::VertexId> b,
                                                 std::vector<graph::VertexId>& out);

}  // namespace katric::seq
