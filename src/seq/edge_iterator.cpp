#include "seq/edge_iterator.hpp"

#include "graph/orientation.hpp"
#include "seq/adaptive_intersect.hpp"
#include "util/assert.hpp"

namespace katric::seq {

using graph::CsrGraph;
using graph::VertexId;

std::uint64_t count_brute_force(const CsrGraph& undirected) {
    KATRIC_ASSERT(!undirected.is_oriented());
    const VertexId n = undirected.num_vertices();
    std::uint64_t triangles = 0;
    for (VertexId u = 0; u < n; ++u) {
        for (VertexId v = u + 1; v < n; ++v) {
            if (!undirected.has_edge(u, v)) { continue; }
            for (VertexId w = v + 1; w < n; ++w) {
                if (undirected.has_edge(u, w) && undirected.has_edge(v, w)) { ++triangles; }
            }
        }
    }
    return triangles;
}

SeqCountResult count_oriented(const CsrGraph& oriented, IntersectKind kind) {
    KATRIC_ASSERT(oriented.is_oriented());
    SeqCountResult result;
    for (VertexId v = 0; v < oriented.num_vertices(); ++v) {
        const auto out_v = oriented.neighbors(v);
        for (VertexId u : out_v) {
            const auto r = intersect(kind, out_v, oriented.neighbors(u));
            result.triangles += r.count;
            result.ops += r.ops;
        }
    }
    return result;
}

SeqCountResult count_edge_iterator(const CsrGraph& undirected, IntersectKind kind) {
    return count_oriented(graph::orient_by_degree(undirected), kind);
}

SeqCountResult count_wedge_check(const CsrGraph& undirected) {
    const CsrGraph oriented = graph::orient_by_degree(undirected);
    SeqCountResult result;
    for (VertexId v = 0; v < oriented.num_vertices(); ++v) {
        const auto out_v = oriented.neighbors(v);
        for (std::size_t i = 0; i < out_v.size(); ++i) {
            for (std::size_t j = i + 1; j < out_v.size(); ++j) {
                // Wedge (v,u),(v,w): the closing edge may be oriented either
                // way; checking the undirected graph covers both.
                result.ops += 64;  // one adjacency probe ≈ log n comparisons
                if (undirected.has_edge(out_v[i], out_v[j])) { ++result.triangles; }
            }
        }
    }
    return result;
}

std::vector<std::uint64_t> per_vertex_triangles(const CsrGraph& undirected,
                                                IntersectKind kind) {
    const CsrGraph oriented = graph::orient_by_degree(undirected);
    const AdaptiveIntersect isect(kind);
    std::vector<std::uint64_t> delta(undirected.num_vertices(), 0);
    auto& closing = collect_scratch();
    for (VertexId v = 0; v < oriented.num_vertices(); ++v) {
        const auto out_v = oriented.neighbors(v);
        for (VertexId u : out_v) {
            closing.clear();
            isect.collect(out_v, oriented.neighbors(u), closing, v, u);
            delta[v] += closing.size();
            delta[u] += closing.size();
            for (VertexId w : closing) { ++delta[w]; }
        }
    }
    return delta;
}

}  // namespace katric::seq
