#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "seq/intersection.hpp"

namespace katric::seq {

/// Result of a sequential triangle count; ops is the total intersection
/// work (comparisons), the input to the simulator's compute model.
struct SeqCountResult {
    std::uint64_t triangles = 0;
    std::uint64_t ops = 0;
};

/// O(n³) reference over all vertex triples. Only for tests on tiny graphs.
[[nodiscard]] std::uint64_t count_brute_force(const graph::CsrGraph& undirected);

/// EDGEITERATOR / COMPACT-FORWARD (Algorithm 1): orient by degree, then for
/// every directed edge (v,u) add |N⁺(v) ∩ N⁺(u)|. Each triangle is counted
/// exactly once, at the edge between its two ≺-smallest vertices.
[[nodiscard]] SeqCountResult count_edge_iterator(const graph::CsrGraph& undirected,
                                                 IntersectKind kind = IntersectKind::kMerge);

/// Same loop on a pre-oriented graph (any orientation from a total order).
[[nodiscard]] SeqCountResult count_oriented(const graph::CsrGraph& oriented,
                                            IntersectKind kind = IntersectKind::kMerge);

/// Naive wedge-checking counter (Section II-A): enumerate all wedges
/// (v,u),(v,w) with u < w and test for the closing edge. Exercised as the
/// HavoqGT-style baseline's local kernel.
[[nodiscard]] SeqCountResult count_wedge_check(const graph::CsrGraph& undirected);

/// Δ(v) for every vertex: number of triangles incident to v. Basis of the
/// local clustering coefficient. `kind` selects the closing-vertex collect
/// kernel (merge/galloping/SIMD families; every kind yields identical Δ).
[[nodiscard]] std::vector<std::uint64_t> per_vertex_triangles(
    const graph::CsrGraph& undirected, IntersectKind kind = IntersectKind::kMerge);

}  // namespace katric::seq
