#include "seq/algorithm_zoo.hpp"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "graph/orientation.hpp"
#include "util/assert.hpp"
#include "util/bits.hpp"

namespace katric::seq {

using graph::CsrGraph;
using graph::Degree;
using graph::VertexId;

SeqCountResult count_forward(const CsrGraph& undirected) {
    KATRIC_ASSERT(!undirected.is_oriented());
    const VertexId n = undirected.num_vertices();
    std::vector<Degree> degrees(n);
    for (VertexId v = 0; v < n; ++v) { degrees[v] = undirected.degree(v); }
    const graph::DegreeOrder order{std::span<const Degree>(degrees)};

    // η: position of each vertex in ≺ order.
    std::vector<VertexId> by_order(n);
    for (VertexId v = 0; v < n; ++v) { by_order[v] = v; }
    std::sort(by_order.begin(), by_order.end(),
              [&](VertexId a, VertexId b) { return order.precedes(a, b); });
    std::vector<VertexId> eta(n);
    for (VertexId i = 0; i < n; ++i) { eta[by_order[i]] = i; }

    // Dynamic sets, kept sorted by η (insertion happens in η order).
    std::vector<std::vector<VertexId>> dynamic(n);
    SeqCountResult result;
    for (VertexId i = 0; i < n; ++i) {
        const VertexId v = by_order[i];
        for (VertexId u : undirected.neighbors(v)) {
            if (!order.precedes(v, u)) { continue; }
            // Merge-intersect the dynamic sets (both η-sorted).
            const auto& a = dynamic[v];
            const auto& b = dynamic[u];
            std::size_t x = 0;
            std::size_t y = 0;
            while (x < a.size() && y < b.size()) {
                ++result.ops;
                if (eta[a[x]] < eta[b[y]]) {
                    ++x;
                } else if (eta[b[y]] < eta[a[x]]) {
                    ++y;
                } else {
                    ++result.triangles;
                    ++x;
                    ++y;
                }
            }
            dynamic[u].push_back(v);
        }
    }
    return result;
}

SeqCountResult count_edge_iterator_hashed(const CsrGraph& undirected) {
    const CsrGraph oriented = graph::orient_by_degree(undirected);
    SeqCountResult result;
    std::unordered_set<VertexId> probe;
    for (VertexId v = 0; v < oriented.num_vertices(); ++v) {
        const auto out_v = oriented.neighbors(v);
        if (out_v.size() < 2) { continue; }
        probe.clear();
        probe.insert(out_v.begin(), out_v.end());
        result.ops += out_v.size();  // build cost
        for (VertexId u : out_v) {
            for (VertexId w : oriented.neighbors(u)) {
                ++result.ops;
                if (probe.count(w) > 0) { ++result.triangles; }
            }
        }
    }
    return result;
}

SeqCountResult count_node_iterator(const CsrGraph& undirected) {
    const CsrGraph oriented = graph::orient_by_degree(undirected);
    SeqCountResult result;
    for (VertexId v = 0; v < oriented.num_vertices(); ++v) {
        const auto out_v = oriented.neighbors(v);
        for (std::size_t i = 0; i < out_v.size(); ++i) {
            const auto nbrs_u = oriented.neighbors(out_v[i]);
            const auto log_probe = katric::ceil_log2(nbrs_u.size() + 1) + 1;
            for (std::size_t j = i + 1; j < out_v.size(); ++j) {
                result.ops += log_probe;
                // Both wedge endpoints exceed v in ≺; the closing edge is
                // oriented from the ≺-smaller endpoint, and out-lists are
                // ID-sorted with out_v[i] < out_v[j] — but ≺ is degree-based,
                // so probe both directions.
                if (std::binary_search(nbrs_u.begin(), nbrs_u.end(), out_v[j])
                    || oriented.has_edge(out_v[j], out_v[i])) {
                    ++result.triangles;
                }
            }
        }
    }
    return result;
}

}  // namespace katric::seq
