#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/types.hpp"

namespace katric::seq {

/// Result of a set-intersection count plus the number of elementary
/// operations performed. The op count feeds the simulator's compute-cost
/// model so simulated time reflects the real work the kernels do.
struct IntersectResult {
    std::uint64_t count = 0;
    std::uint64_t ops = 0;
};

/// Merge-style intersection of two ID-sorted neighborhoods — the kernel the
/// paper uses ("a procedure similar to the merge phase of merge sort").
/// ops = number of comparisons ≈ |a| + |b|.
[[nodiscard]] IntersectResult intersect_merge(std::span<const graph::VertexId> a,
                                              std::span<const graph::VertexId> b) noexcept;

/// Binary-search intersection: probe each element of the smaller set in the
/// larger one. ops = the probe comparisons *actually performed* (measured,
/// not the ⌈log₂|large|⌉ upper bound), so hybrid/adaptive crossover
/// decisions and simulator costs reflect real work. Wins for very skewed
/// sizes and is the GPU-friendly variant discussed in related work.
[[nodiscard]] IntersectResult intersect_binary(std::span<const graph::VertexId> a,
                                               std::span<const graph::VertexId> b) noexcept;

/// Galloping (exponential-search) intersection: walk the smaller set and
/// gallop a monotone cursor through the larger one. Unlike intersect_binary
/// the probes share one forward-moving cursor, so the cost adapts to the
/// overlap pattern: O(small · log(large/small)) worst case, near O(small)
/// when matches cluster. ops = measured comparisons.
[[nodiscard]] IntersectResult intersect_galloping(
    std::span<const graph::VertexId> a, std::span<const graph::VertexId> b) noexcept;

/// Size-ratio dispatch between merge and binary search.
[[nodiscard]] IntersectResult intersect_hybrid(std::span<const graph::VertexId> a,
                                               std::span<const graph::VertexId> b) noexcept;

/// The kernel menu. kMerge/kBinary/kHybrid are the paper-era scalar kernels;
/// kGalloping/kSimd add the cursor-galloping and AVX2 block-merge kernels;
/// kBitmap forces hub-bitmap probes where a hub row is available; kAdaptive
/// picks per intersection from size ratio + hub membership (see
/// seq::AdaptiveIntersect for the decision table).
enum class IntersectKind {
    kMerge,
    kBinary,
    kHybrid,
    kGalloping,
    kSimd,
    kBitmap,
    kAdaptive,
};

/// Span-only dispatch. kBitmap/kAdaptive degrade gracefully here (no hub
/// index in scope): they fall back to the size-adaptive galloping/SIMD
/// choice. Hub-aware dispatch lives in seq::AdaptiveIntersect.
[[nodiscard]] IntersectResult intersect(IntersectKind kind,
                                        std::span<const graph::VertexId> a,
                                        std::span<const graph::VertexId> b) noexcept;

[[nodiscard]] std::string intersect_kind_name(IntersectKind kind);
/// Parses "merge|binary|hybrid|galloping|simd|bitmap|adaptive"; throws
/// assertion_error on anything else (CLI typos must fail loudly).
[[nodiscard]] IntersectKind parse_intersect_kind(const std::string& name);
[[nodiscard]] const std::vector<IntersectKind>& all_intersect_kinds();

/// Merge intersection that also reports the common elements — needed for
/// per-vertex triangle counts (LCC), where every closing vertex w must be
/// credited. Appends to `out` in ascending ID order.
IntersectResult intersect_merge_collect(std::span<const graph::VertexId> a,
                                        std::span<const graph::VertexId> b,
                                        std::vector<graph::VertexId>& out);

/// Galloping counterpart of intersect_merge_collect (same output contract).
IntersectResult intersect_galloping_collect(std::span<const graph::VertexId> a,
                                            std::span<const graph::VertexId> b,
                                            std::vector<graph::VertexId>& out);

/// Index of the first element of `haystack` at or past `from` that is
/// ≥ `needle` (gallop + binary refinement), counting every comparison into
/// `ops`. The shared primitive behind the galloping kernels; exposed so the
/// streaming counter can gallop over flag-annotated rows.
[[nodiscard]] std::size_t gallop_lower_bound(std::span<const graph::VertexId> haystack,
                                             std::size_t from, graph::VertexId needle,
                                             std::uint64_t& ops) noexcept;

/// True when |small|-probe search is estimated cheaper than a linear merge
/// of both sets — the shared crossover rule of the hybrid and adaptive
/// dispatchers.
[[nodiscard]] bool probe_search_pays_off(std::size_t size_a, std::size_t size_b) noexcept;

/// Per-thread reusable collect buffer: call sites that enumerate closing
/// vertices (LCC sinks, triangle enumeration) borrow this instead of
/// allocating a fresh std::vector per intersection. The reference stays
/// valid for the thread's lifetime; contents are clobbered by the next
/// borrower on the same thread.
[[nodiscard]] std::vector<graph::VertexId>& collect_scratch();

}  // namespace katric::seq
