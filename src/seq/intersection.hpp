#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace katric::seq {

/// Result of a set-intersection count plus the number of elementary
/// operations performed. The op count feeds the simulator's compute-cost
/// model so simulated time reflects the real work the kernels do.
struct IntersectResult {
    std::uint64_t count = 0;
    std::uint64_t ops = 0;
};

/// Merge-style intersection of two ID-sorted neighborhoods — the kernel the
/// paper uses ("a procedure similar to the merge phase of merge sort").
/// ops = number of comparisons ≈ |a| + |b|.
[[nodiscard]] IntersectResult intersect_merge(std::span<const graph::VertexId> a,
                                              std::span<const graph::VertexId> b) noexcept;

/// Binary-search intersection: probe each element of the smaller set in the
/// larger one. ops ≈ |small| · log₂|large|; wins for very skewed sizes and
/// is the GPU-friendly variant discussed in related work.
[[nodiscard]] IntersectResult intersect_binary(std::span<const graph::VertexId> a,
                                               std::span<const graph::VertexId> b) noexcept;

/// Size-ratio dispatch between merge and binary search.
[[nodiscard]] IntersectResult intersect_hybrid(std::span<const graph::VertexId> a,
                                               std::span<const graph::VertexId> b) noexcept;

enum class IntersectKind { kMerge, kBinary, kHybrid };

[[nodiscard]] IntersectResult intersect(IntersectKind kind,
                                        std::span<const graph::VertexId> a,
                                        std::span<const graph::VertexId> b) noexcept;

/// Merge intersection that also reports the common elements — needed for
/// per-vertex triangle counts (LCC), where every closing vertex w must be
/// credited.
IntersectResult intersect_merge_collect(std::span<const graph::VertexId> a,
                                        std::span<const graph::VertexId> b,
                                        std::vector<graph::VertexId>& out);

}  // namespace katric::seq
