#include "seq/bitmap_index.hpp"

#include <algorithm>
#include <bit>

#include "util/assert.hpp"
#include "util/bits.hpp"

namespace katric::seq {

namespace {

constexpr std::uint64_t kWordBits = 64;

}  // namespace

std::uint64_t HubBitmapIndex::build(const Config& config,
                                    std::span<const graph::VertexId> candidates,
                                    const RowProvider& rows) {
    clear();
    config_ = config;
    if (config.degree_threshold == 0 || config.max_hubs == 0 || config.universe == 0) {
        return 0;
    }
    words_per_row_ = katric::div_ceil(config.universe, kWordBits);

    // Selection: one degree scan over the candidates, then top-k by degree
    // among qualifiers. nth_element keeps this O(candidates).
    std::uint64_t ops = candidates.size();
    std::vector<std::pair<graph::Degree, graph::VertexId>> qualified;
    for (const graph::VertexId id : candidates) {
        const auto row = rows(id);
        if (row.size() >= config.degree_threshold) {
            qualified.emplace_back(static_cast<graph::Degree>(row.size()), id);
        }
    }
    if (qualified.size() > config.max_hubs) {
        std::nth_element(qualified.begin(),
                         qualified.begin() + static_cast<std::ptrdiff_t>(config.max_hubs),
                         qualified.end(), std::greater<>());
        qualified.resize(config.max_hubs);
    }
    // Deterministic slot layout regardless of nth_element's tie handling.
    std::sort(qualified.begin(), qualified.end(),
              [](const auto& x, const auto& y) { return x.second < y.second; });

    bits_.assign(qualified.size() * words_per_row_, 0);
    std::size_t next = 0;
    for (const auto& [degree, id] : qualified) {
        const auto row = rows(id);
        Slot slot;
        slot.index = next++;
        slot.data = row.data();
        slot.size = row.size();
        write_row(slot.index, row);
        slots_.emplace(id, slot);
        ops += row.size();
    }
    refresh_min_indexed_row();
    return ops;
}

void HubBitmapIndex::refresh_min_indexed_row() noexcept {
    min_indexed_row_ = SIZE_MAX;
    for (const auto& [id, slot] : slots_) {
        min_indexed_row_ = std::min(min_indexed_row_, slot.size);
    }
}

void HubBitmapIndex::write_row(std::size_t slot_index,
                               std::span<const graph::VertexId> row) {
    std::uint64_t* words = bits_.data() + slot_index * words_per_row_;
    std::fill(words, words + words_per_row_, 0);
    for (const graph::VertexId v : row) {
        KATRIC_ASSERT_MSG(v < config_.universe, "hub row element " << v
                                                    << " outside bitmap universe "
                                                    << config_.universe);
        words[v / kWordBits] |= std::uint64_t{1} << (v % kWordBits);
    }
}

const HubBitmapIndex::Slot* HubBitmapIndex::find(graph::VertexId id) const noexcept {
    const auto it = slots_.find(id);
    return it == slots_.end() ? nullptr : &it->second;
}

bool HubBitmapIndex::covers(graph::VertexId id,
                            std::span<const graph::VertexId> row) const noexcept {
    return lookup(id, row) != nullptr;
}

const HubBitmapIndex::Slot* HubBitmapIndex::lookup(
    graph::VertexId id, std::span<const graph::VertexId> row) const noexcept {
    const Slot* slot = find(id);
    if (slot == nullptr || slot->data != row.data() || slot->size != row.size()) {
        return nullptr;
    }
    return slot;
}

bool HubBitmapIndex::test(const Slot& slot, graph::VertexId v) const noexcept {
    if (v >= config_.universe) { return false; }
    const std::uint64_t word = bits_[slot.index * words_per_row_ + v / kWordBits];
    return (word >> (v % kWordBits)) & 1;
}

bool HubBitmapIndex::probe(graph::VertexId hub, graph::VertexId v) const {
    const Slot* slot = find(hub);
    KATRIC_ASSERT_MSG(slot != nullptr, "probe against non-hub " << hub);
    return test(*slot, v);
}

IntersectResult HubBitmapIndex::intersect_count(
    graph::VertexId hub, std::span<const graph::VertexId> probe) const {
    const Slot* slot = find(hub);
    KATRIC_ASSERT_MSG(slot != nullptr, "intersect_count against non-hub " << hub);
    return intersect_count(*slot, probe);
}

IntersectResult HubBitmapIndex::intersect_count(
    const Slot& hub, std::span<const graph::VertexId> probe) const {
    IntersectResult result;
    result.ops = probe.size();
    for (const graph::VertexId v : probe) {
        if (test(hub, v)) { ++result.count; }
    }
    return result;
}

IntersectResult HubBitmapIndex::intersect_collect(
    graph::VertexId hub, std::span<const graph::VertexId> probe,
    std::vector<graph::VertexId>& out) const {
    const Slot* slot = find(hub);
    KATRIC_ASSERT_MSG(slot != nullptr, "intersect_collect against non-hub " << hub);
    return intersect_collect(*slot, probe, out);
}

IntersectResult HubBitmapIndex::intersect_collect(
    const Slot& hub, std::span<const graph::VertexId> probe,
    std::vector<graph::VertexId>& out) const {
    IntersectResult result;
    result.ops = probe.size();
    for (const graph::VertexId v : probe) {
        if (test(hub, v)) {
            ++result.count;
            out.push_back(v);
        }
    }
    return result;
}

IntersectResult HubBitmapIndex::intersect_hub_hub(graph::VertexId h1,
                                                  graph::VertexId h2) const {
    const Slot* s1 = find(h1);
    const Slot* s2 = find(h2);
    KATRIC_ASSERT_MSG(s1 != nullptr && s2 != nullptr,
                      "intersect_hub_hub needs two indexed hubs");
    return intersect_hub_hub(*s1, *s2);
}

IntersectResult HubBitmapIndex::intersect_hub_hub(const Slot& s1, const Slot& s2) const {
    const std::uint64_t* w1 = bits_.data() + s1.index * words_per_row_;
    const std::uint64_t* w2 = bits_.data() + s2.index * words_per_row_;
    IntersectResult result;
    result.ops = words_per_row_;
    for (std::uint64_t w = 0; w < words_per_row_; ++w) {
        result.count += static_cast<std::uint64_t>(std::popcount(w1[w] & w2[w]));
    }
    return result;
}

void HubBitmapIndex::mark_dirty(graph::VertexId v) { dirty_.push_back(v); }

std::uint64_t HubBitmapIndex::rebuild_dirty(const RowProvider& rows) {
    if (config_.degree_threshold == 0 || words_per_row_ == 0) {
        // Never configured — nothing is indexed, nothing can go stale.
        dirty_.clear();
        return 0;
    }
    if (dirty_.empty()) { return 0; }
    std::sort(dirty_.begin(), dirty_.end());
    dirty_.erase(std::unique(dirty_.begin(), dirty_.end()), dirty_.end());
    std::uint64_t ops = dirty_.size();

    // One provider call per dirty row; both passes read the cached spans
    // (nothing mutates the underlying adjacency during a rebuild).
    std::vector<std::span<const graph::VertexId>> dirty_rows;
    dirty_rows.reserve(dirty_.size());
    for (const graph::VertexId v : dirty_) { dirty_rows.push_back(rows(v)); }

    // Pass 1: drop every dirty row that fell below the threshold. Freeing
    // capacity before any admission keeps the result independent of vertex-ID
    // order — a single-pass mix of drops and adds used to reject a
    // newly-qualifying row whenever its ID sorted ahead of the row whose
    // eviction would have made room, and the rejected row was then lost for
    // good once the dirty set was cleared.
    for (std::size_t i = 0; i < dirty_.size(); ++i) {
        const auto it = slots_.find(dirty_[i]);
        if (it == slots_.end()) { continue; }
        if (dirty_rows[i].size() >= config_.degree_threshold) { continue; }
        free_slots_.push_back(it->second.index);
        // Zero the recycled row now so a future occupant starts clean.
        std::fill_n(bits_.begin()
                        + static_cast<std::ptrdiff_t>(it->second.index * words_per_row_),
                    words_per_row_, 0);
        slots_.erase(it);
    }

    // Pass 2: rewrite surviving rows and admit newly-qualifying ones into
    // the freed-up capacity.
    for (std::size_t i = 0; i < dirty_.size(); ++i) {
        const graph::VertexId v = dirty_[i];
        const auto row = dirty_rows[i];
        auto it = slots_.find(v);
        if (it == slots_.end()) {
            if (row.size() < config_.degree_threshold
                || slots_.size() >= config_.max_hubs) {
                continue;
            }
            Slot slot;
            if (!free_slots_.empty()) {
                slot.index = free_slots_.back();
                free_slots_.pop_back();
            } else {
                slot.index = bits_.size() / words_per_row_;
                bits_.resize(bits_.size() + words_per_row_, 0);
            }
            it = slots_.emplace(v, slot).first;
        }
        write_row(it->second.index, row);
        it->second.data = row.data();
        it->second.size = row.size();
        ops += row.size();
    }
    dirty_.clear();
    refresh_min_indexed_row();
    return ops;
}

void HubBitmapIndex::clear() {
    config_ = {};
    words_per_row_ = 0;
    min_indexed_row_ = SIZE_MAX;
    slots_.clear();
    free_slots_.clear();
    bits_.clear();
    dirty_.clear();
}

}  // namespace katric::seq
