#include "seq/parallel_local.hpp"

#include <omp.h>

#include <algorithm>
#include <vector>

#include "util/assert.hpp"
#include "util/timer.hpp"

namespace katric::seq {

using graph::VertexId;

ParallelCountResult count_oriented_parallel(const graph::CsrGraph& oriented,
                                            int num_threads, IntersectKind kind) {
    KATRIC_ASSERT(oriented.is_oriented());
    KATRIC_ASSERT(num_threads >= 1);
    ParallelCountResult result;
    result.threads = num_threads;

    std::vector<std::uint64_t> thread_triangles(static_cast<std::size_t>(num_threads), 0);
    std::vector<std::uint64_t> thread_ops(static_cast<std::size_t>(num_threads), 0);

    WallTimer timer;
    const auto n = static_cast<std::int64_t>(oriented.num_vertices());
#pragma omp parallel num_threads(num_threads)
    {
        const auto tid = static_cast<std::size_t>(omp_get_thread_num());
        std::uint64_t local_triangles = 0;
        std::uint64_t local_ops = 0;
        // Dynamic chunks approximate edge-centric work stealing: vertices
        // with heavy out-neighborhoods no longer serialize a single thread.
#pragma omp for schedule(dynamic, 64)
        for (std::int64_t sv = 0; sv < n; ++sv) {
            const auto v = static_cast<VertexId>(sv);
            const auto out_v = oriented.neighbors(v);
            for (VertexId u : out_v) {
                const auto r = intersect(kind, out_v, oriented.neighbors(u));
                local_triangles += r.count;
                local_ops += r.ops;
            }
        }
        thread_triangles[tid] = local_triangles;
        thread_ops[tid] = local_ops;
    }
    result.wall_seconds = timer.elapsed_seconds();

    for (std::size_t t = 0; t < thread_triangles.size(); ++t) {
        result.triangles += thread_triangles[t];
        result.ops += thread_ops[t];
        result.max_thread_ops = std::max(result.max_thread_ops, thread_ops[t]);
    }
    return result;
}

}  // namespace katric::seq
