#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/types.hpp"
#include "seq/intersection.hpp"

namespace katric::seq {

/// The shared automatic hub-qualification policy: a row counts as a hub
/// once it is ≥ 4× the mean row length (and at least 8) — the far tail of
/// the rank's degree profile. Callers pass the mean of whatever row family
/// they index (oriented half-rows for static views, full rows for dynamic
/// ones).
[[nodiscard]] constexpr graph::Degree auto_hub_threshold(
    std::uint64_t mean_row_length) noexcept {
    return std::max<graph::Degree>(8, 4 * mean_row_length);
}

/// Per-rank dense-bitmap index over the adjacency rows of *hub* vertices —
/// the highest-degree rows, which dominate intersection cost under skewed
/// degree distributions (Kolountzakis et al.'s degree-based special-casing
/// of hubs). A hub's sorted row is materialized once as a bitmap over the
/// vertex-ID universe; intersecting anything against it then costs one bit
/// probe per element of the other side (or a word-AND + popcount when both
/// sides are hubs) instead of a merge over the hub's full degree.
///
/// Row identity: every indexed row remembers the (pointer, length) of the
/// storage it was built from. Lookups require the caller's span to match —
/// a span that refers to different storage (a contracted row, a received
/// wire record, a row that was reallocated) simply misses and the caller
/// falls back to the span kernels. This makes a stale bitmap structurally
/// unreachable rather than a correctness hazard.
///
/// Streaming: mark_dirty(v) records rows whose content changed;
/// rebuild_dirty() re-materializes exactly those rows (re-qualifying or
/// dropping them as their degree crosses the threshold) — a dirty-set
/// refresh, not a full rebuild.
class HubBitmapIndex {
public:
    struct Config {
        /// Rows with at least this many neighbors qualify as hubs.
        graph::Degree degree_threshold = 0;
        /// Hard cap on materialized hubs (top-k by degree); bounds memory to
        /// max_hubs · universe/64 words per rank.
        std::size_t max_hubs = 256;
        /// Number of vertex IDs a bitmap must cover (global n).
        graph::VertexId universe = 0;

        friend bool operator==(const Config&, const Config&) = default;
    };

    /// Supplies the current row of a vertex, or an empty span if the vertex
    /// has none. Used at build and dirty-rebuild time.
    using RowProvider =
        std::function<std::span<const graph::VertexId>(graph::VertexId)>;

    /// (Re)builds the index over `candidates`, keeping the top-k rows that
    /// meet the threshold. Returns the elementary ops spent (row scans for
    /// selection + one bit-set per indexed element) so callers can charge
    /// the simulator honestly.
    std::uint64_t build(const Config& config,
                        std::span<const graph::VertexId> candidates,
                        const RowProvider& rows);

    [[nodiscard]] bool empty() const noexcept { return slots_.empty(); }
    [[nodiscard]] std::size_t num_hubs() const noexcept { return slots_.size(); }
    [[nodiscard]] const Config& config() const noexcept { return config_; }

    /// One bitmap row's bookkeeping. Returned by lookup() so hot intersect
    /// paths resolve a hub's slot once instead of re-hashing per kernel call.
    struct Slot {
        std::size_t index = 0;                    // row into bits_
        const graph::VertexId* data = nullptr;    // row-identity fingerprint
        std::size_t size = 0;
    };

    /// True iff `id` is indexed AND `row` is the exact storage the bitmap
    /// was built from (see "row identity" above).
    [[nodiscard]] bool covers(graph::VertexId id,
                              std::span<const graph::VertexId> row) const noexcept;
    /// covers() and find in one hash probe: the slot when `id` is indexed
    /// over exactly `row`'s storage, nullptr otherwise. The pointer is
    /// invalidated by build/rebuild_dirty/clear.
    [[nodiscard]] const Slot* lookup(graph::VertexId id,
                                     std::span<const graph::VertexId> row) const noexcept;
    /// Membership regardless of row identity — for stats/tests.
    [[nodiscard]] bool contains_hub(graph::VertexId id) const noexcept {
        return slots_.contains(id);
    }

    /// Single membership probe v ∈ row(hub) — for callers that interleave
    /// probes with their own per-match bookkeeping (the streaming counter's
    /// flag-annotated rows). Cost: 1 op, charged by the caller. Requires
    /// contains_hub(hub).
    [[nodiscard]] bool probe(graph::VertexId hub, graph::VertexId v) const;

    /// |row(hub) ∩ probe| via one bit probe per element of `probe`.
    /// ops = |probe|. Requires contains_hub(hub).
    [[nodiscard]] IntersectResult intersect_count(
        graph::VertexId hub, std::span<const graph::VertexId> probe) const;
    [[nodiscard]] IntersectResult intersect_count(
        const Slot& hub, std::span<const graph::VertexId> probe) const;

    /// Collect variant: appends the matching elements of `probe` in probe
    /// order (ascending for sorted probes — the merge-collect contract).
    IntersectResult intersect_collect(graph::VertexId hub,
                                      std::span<const graph::VertexId> probe,
                                      std::vector<graph::VertexId>& out) const;
    IntersectResult intersect_collect(const Slot& hub,
                                      std::span<const graph::VertexId> probe,
                                      std::vector<graph::VertexId>& out) const;

    /// |row(h1) ∩ row(h2)| as word-AND + popcount over the two bitmaps.
    /// ops = number of bitmap words. Requires both hubs indexed.
    [[nodiscard]] IntersectResult intersect_hub_hub(graph::VertexId h1,
                                                    graph::VertexId h2) const;
    [[nodiscard]] IntersectResult intersect_hub_hub(const Slot& s1,
                                                    const Slot& s2) const;

    /// Word count of one bitmap row — the cost of a hub∩hub AND, exposed so
    /// dispatchers can compare it against the probe alternative.
    [[nodiscard]] std::uint64_t words_per_row() const noexcept { return words_per_row_; }

    /// Smallest indexed row length (SIZE_MAX when empty): rows shorter than
    /// this can never be covered, so hot dispatch paths use it to skip the
    /// hash probe for the vast majority of non-hub operands. Maintained by
    /// build() and rebuild_dirty().
    [[nodiscard]] std::size_t min_indexed_row() const noexcept {
        return min_indexed_row_;
    }

    // --- streaming maintenance -------------------------------------------
    /// Records that v's row changed; cheap (amortized O(1)), callable from
    /// the mutation path.
    void mark_dirty(graph::VertexId v);
    [[nodiscard]] std::size_t num_dirty() const noexcept { return dirty_.size(); }
    /// Re-materializes every dirty row: re-qualifies rows that crossed the
    /// threshold upward, drops rows that fell below it, rewrites the rest.
    /// Returns charged ops (one per rewritten bit plus per-row scan).
    std::uint64_t rebuild_dirty(const RowProvider& rows);

    void clear();

private:
    void write_row(std::size_t slot_index, std::span<const graph::VertexId> row);
    [[nodiscard]] const Slot* find(graph::VertexId id) const noexcept;
    [[nodiscard]] bool test(const Slot& slot, graph::VertexId v) const noexcept;

    void refresh_min_indexed_row() noexcept;

    Config config_;
    std::uint64_t words_per_row_ = 0;
    std::size_t min_indexed_row_ = SIZE_MAX;
    std::unordered_map<graph::VertexId, Slot> slots_;
    std::vector<std::size_t> free_slots_;  // recycled bitmap rows
    std::vector<std::uint64_t> bits_;
    std::vector<graph::VertexId> dirty_;
};

}  // namespace katric::seq
