#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "seq/intersection.hpp"

namespace katric::seq {

/// Local clustering coefficients. With Δ(v) triangles incident to v and
/// degree d_v, the standard definition is
///     LCC(v) = 2·Δ(v) / (d_v·(d_v − 1)),
/// the fraction of closed wedges at v, normalized to [0,1]. (The paper's
/// Section IV-E prints the formula without the factor 2; we use the standard
/// normalization and note the deviation in DESIGN.md — both sides of every
/// comparison in this repository use the same formula.) Vertices with
/// d_v < 2 have LCC 0.
[[nodiscard]] std::vector<double> local_clustering_coefficients(
    const graph::CsrGraph& undirected, IntersectKind kind = IntersectKind::kMerge);

/// Same from precomputed Δ values.
[[nodiscard]] std::vector<double> lcc_from_triangle_counts(
    const graph::CsrGraph& undirected, const std::vector<std::uint64_t>& delta);

/// Average LCC over all vertices — the global clustering statistic used to
/// sanity-check proxy instances against their family (web ≫ road).
[[nodiscard]] double average_lcc(const graph::CsrGraph& undirected);

/// Δ and LCC of a static graph in one call — the single-machine reference
/// oracle the distributed and streaming paths are property-tested against.
struct LccOracle {
    std::vector<std::uint64_t> delta;
    std::vector<double> lcc;
};

[[nodiscard]] LccOracle compute_lcc_oracle(const graph::CsrGraph& undirected);

}  // namespace katric::seq
