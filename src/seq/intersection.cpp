#include "seq/intersection.hpp"

#include <algorithm>

#include "seq/intersection_simd.hpp"
#include "util/assert.hpp"
#include "util/bits.hpp"

namespace katric::seq {

IntersectResult intersect_merge(std::span<const graph::VertexId> a,
                                std::span<const graph::VertexId> b) noexcept {
    IntersectResult result;
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() && j < b.size()) {
        ++result.ops;
        if (a[i] < b[j]) {
            ++i;
        } else if (b[j] < a[i]) {
            ++j;
        } else {
            ++result.count;
            ++i;
            ++j;
        }
    }
    return result;
}

IntersectResult intersect_binary(std::span<const graph::VertexId> a,
                                 std::span<const graph::VertexId> b) noexcept {
    if (a.size() > b.size()) { return intersect_binary(b, a); }
    IntersectResult result;
    for (const graph::VertexId x : a) {
        // Hand-rolled lower bound so every comparison the probe makes is
        // charged — the ⌈log₂|b|⌉ bound overcharges short early exits and
        // undercharges nothing, which skewed crossover decisions.
        std::size_t lo = 0;
        std::size_t hi = b.size();
        while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            ++result.ops;
            if (b[mid] < x) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if (lo < b.size()) {
            ++result.ops;
            if (b[lo] == x) { ++result.count; }
        }
    }
    return result;
}

std::size_t gallop_lower_bound(std::span<const graph::VertexId> haystack,
                               std::size_t from, graph::VertexId needle,
                               std::uint64_t& ops) noexcept {
    if (from >= haystack.size()) { return haystack.size(); }
    ++ops;
    if (haystack[from] >= needle) { return from; }
    // Exponential probe: windows [from+step/2, from+step] double until one
    // straddles the needle (or the end).
    std::size_t step = 1;
    std::size_t lo = from;
    std::size_t hi;
    while (true) {
        hi = from + step;
        if (hi >= haystack.size()) {
            hi = haystack.size();
            break;
        }
        ++ops;
        if (haystack[hi] >= needle) { break; }
        lo = hi;
        step *= 2;
    }
    // Binary refinement inside (lo, hi): haystack[lo] < needle ≤ haystack[hi].
    ++lo;
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        ++ops;
        if (haystack[mid] < needle) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    return lo;
}

IntersectResult intersect_galloping(std::span<const graph::VertexId> a,
                                    std::span<const graph::VertexId> b) noexcept {
    if (a.size() > b.size()) { return intersect_galloping(b, a); }
    IntersectResult result;
    std::size_t pos = 0;
    for (const graph::VertexId x : a) {
        pos = gallop_lower_bound(b, pos, x, result.ops);
        if (pos == b.size()) { break; }  // every later probe is larger still
        ++result.ops;
        if (b[pos] == x) {
            ++result.count;
            ++pos;
        }
    }
    return result;
}

IntersectResult intersect_galloping_collect(std::span<const graph::VertexId> a,
                                            std::span<const graph::VertexId> b,
                                            std::vector<graph::VertexId>& out) {
    const bool a_small = a.size() <= b.size();
    const auto small = a_small ? a : b;
    const auto large = a_small ? b : a;
    IntersectResult result;
    std::size_t pos = 0;
    for (const graph::VertexId x : small) {
        pos = gallop_lower_bound(large, pos, x, result.ops);
        if (pos == large.size()) { break; }
        ++result.ops;
        if (large[pos] == x) {
            ++result.count;
            out.push_back(x);
            ++pos;
        }
    }
    return result;
}

bool probe_search_pays_off(std::size_t size_a, std::size_t size_b) noexcept {
    const std::size_t small = std::min(size_a, size_b);
    const std::size_t large = std::max(size_a, size_b);
    return small + large > small * (katric::ceil_log2(large + 1) + 1);
}

IntersectResult intersect_hybrid(std::span<const graph::VertexId> a,
                                 std::span<const graph::VertexId> b) noexcept {
    // Binary search pays off once |small|·log|large| < |small| + |large|.
    if (probe_search_pays_off(a.size(), b.size())) { return intersect_binary(a, b); }
    return intersect_merge(a, b);
}

IntersectResult intersect(IntersectKind kind, std::span<const graph::VertexId> a,
                          std::span<const graph::VertexId> b) noexcept {
    switch (kind) {
        case IntersectKind::kMerge: return intersect_merge(a, b);
        case IntersectKind::kBinary: return intersect_binary(a, b);
        case IntersectKind::kHybrid: return intersect_hybrid(a, b);
        // kGalloping routes through the SIMD front scan exactly like
        // AdaptiveIntersect does, so the same named kernel charges the same
        // ops from every entry point.
        case IntersectKind::kGalloping: return intersect_simd_galloping(a, b);
        case IntersectKind::kSimd: return intersect_simd_merge(a, b);
        case IntersectKind::kBitmap:
        case IntersectKind::kAdaptive:
            // No hub index in the span-only entry point — apply the
            // size-adaptive half of the decision table.
            if (probe_search_pays_off(a.size(), b.size())) {
                return intersect_simd_galloping(a, b);
            }
            return intersect_simd_merge(a, b);
    }
    return {};
}

std::string intersect_kind_name(IntersectKind kind) {
    switch (kind) {
        case IntersectKind::kMerge: return "merge";
        case IntersectKind::kBinary: return "binary";
        case IntersectKind::kHybrid: return "hybrid";
        case IntersectKind::kGalloping: return "galloping";
        case IntersectKind::kSimd: return "simd";
        case IntersectKind::kBitmap: return "bitmap";
        case IntersectKind::kAdaptive: return "adaptive";
    }
    return "unknown";
}

IntersectKind parse_intersect_kind(const std::string& name) {
    for (const auto kind : all_intersect_kinds()) {
        if (intersect_kind_name(kind) == name) { return kind; }
    }
    KATRIC_THROW("unknown intersect kind '"
                 << name << "' (merge|binary|hybrid|galloping|simd|bitmap|adaptive)");
}

const std::vector<IntersectKind>& all_intersect_kinds() {
    static const std::vector<IntersectKind> kinds = {
        IntersectKind::kMerge,     IntersectKind::kBinary, IntersectKind::kHybrid,
        IntersectKind::kGalloping, IntersectKind::kSimd,   IntersectKind::kBitmap,
        IntersectKind::kAdaptive,
    };
    return kinds;
}

IntersectResult intersect_merge_collect(std::span<const graph::VertexId> a,
                                        std::span<const graph::VertexId> b,
                                        std::vector<graph::VertexId>& out) {
    IntersectResult result;
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() && j < b.size()) {
        ++result.ops;
        if (a[i] < b[j]) {
            ++i;
        } else if (b[j] < a[i]) {
            ++j;
        } else {
            ++result.count;
            out.push_back(a[i]);
            ++i;
            ++j;
        }
    }
    return result;
}

std::vector<graph::VertexId>& collect_scratch() {
    thread_local std::vector<graph::VertexId> scratch;
    return scratch;
}

}  // namespace katric::seq
