#include "seq/intersection.hpp"

#include <algorithm>

#include "util/bits.hpp"

namespace katric::seq {

IntersectResult intersect_merge(std::span<const graph::VertexId> a,
                                std::span<const graph::VertexId> b) noexcept {
    IntersectResult result;
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() && j < b.size()) {
        ++result.ops;
        if (a[i] < b[j]) {
            ++i;
        } else if (b[j] < a[i]) {
            ++j;
        } else {
            ++result.count;
            ++i;
            ++j;
        }
    }
    return result;
}

IntersectResult intersect_binary(std::span<const graph::VertexId> a,
                                 std::span<const graph::VertexId> b) noexcept {
    if (a.size() > b.size()) { return intersect_binary(b, a); }
    IntersectResult result;
    const std::uint64_t log_b = katric::ceil_log2(b.size() + 1) + 1;
    for (const graph::VertexId x : a) {
        result.ops += log_b;
        if (std::binary_search(b.begin(), b.end(), x)) { ++result.count; }
    }
    return result;
}

IntersectResult intersect_hybrid(std::span<const graph::VertexId> a,
                                 std::span<const graph::VertexId> b) noexcept {
    const std::size_t small = std::min(a.size(), b.size());
    const std::size_t large = std::max(a.size(), b.size());
    // Binary search pays off once |small|·log|large| < |small| + |large|.
    if (small + large > small * (katric::ceil_log2(large + 1) + 1)) {
        return intersect_binary(a, b);
    }
    return intersect_merge(a, b);
}

IntersectResult intersect(IntersectKind kind, std::span<const graph::VertexId> a,
                          std::span<const graph::VertexId> b) noexcept {
    switch (kind) {
        case IntersectKind::kMerge: return intersect_merge(a, b);
        case IntersectKind::kBinary: return intersect_binary(a, b);
        case IntersectKind::kHybrid: return intersect_hybrid(a, b);
    }
    return {};
}

IntersectResult intersect_merge_collect(std::span<const graph::VertexId> a,
                                        std::span<const graph::VertexId> b,
                                        std::vector<graph::VertexId>& out) {
    IntersectResult result;
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() && j < b.size()) {
        ++result.ops;
        if (a[i] < b[j]) {
            ++i;
        } else if (b[j] < a[i]) {
            ++j;
        } else {
            ++result.count;
            out.push_back(a[i]);
            ++i;
            ++j;
        }
    }
    return result;
}

}  // namespace katric::seq
