#include "seq/adaptive_intersect.hpp"

#include <algorithm>
#include <optional>

namespace katric::seq {

namespace {

/// Resolves which side (if any) can be served from the hub index. Returns
/// the intersection result, or nullopt when neither row is covered. On
/// success `choice` reports which bitmap kernel ran.
std::optional<IntersectResult> try_bitmap(const HubBitmapIndex* hubs,
                                          std::span<const graph::VertexId> a,
                                          std::span<const graph::VertexId> b,
                                          graph::VertexId a_id, graph::VertexId b_id,
                                          std::vector<graph::VertexId>* out,
                                          obs::KernelChoice& choice) {
    if (hubs == nullptr || hubs->empty()) { return std::nullopt; }
    // No row shorter than the smallest indexed row can be covered, so such
    // operands — the vast majority of calls — skip the hash probe entirely;
    // candidates resolve slot + covers() in one lookup.
    const auto gate = hubs->min_indexed_row();
    const auto* a_hub = a_id != graph::kInvalidVertex && a.size() >= gate
                            ? hubs->lookup(a_id, a)
                            : nullptr;
    const auto* b_hub = b_id != graph::kInvalidVertex && b.size() >= gate
                            ? hubs->lookup(b_id, b)
                            : nullptr;
    if (a_hub != nullptr && b_hub != nullptr && out == nullptr) {
        // Word-AND + popcount, unless probing the smaller row through the
        // other's bitmap is cheaper (sparse rows in a large universe).
        const std::uint64_t probe_cost = std::min(a.size(), b.size());
        if (hubs->words_per_row() <= probe_cost) {
            choice = obs::KernelChoice::kBitmapHubHub;
            return hubs->intersect_hub_hub(*a_hub, *b_hub);
        }
    }
    choice = obs::KernelChoice::kBitmapProbe;
    if (b_hub != nullptr && !(a_hub != nullptr && a.size() > b.size())) {
        // Probe the (typically smaller) non-hub side through b's bitmap.
        return out == nullptr ? hubs->intersect_count(*b_hub, a)
                              : hubs->intersect_collect(*b_hub, a, *out);
    }
    if (a_hub != nullptr) {
        return out == nullptr ? hubs->intersect_count(*a_hub, b)
                              : hubs->intersect_collect(*a_hub, b, *out);
    }
    return std::nullopt;
}

}  // namespace

IntersectResult AdaptiveIntersect::count(std::span<const graph::VertexId> a,
                                         std::span<const graph::VertexId> b,
                                         graph::VertexId a_id,
                                         graph::VertexId b_id) const {
    const std::size_t smaller = std::min(a.size(), b.size());
    switch (kind_) {
        case IntersectKind::kMerge:
            note(obs::KernelChoice::kMerge, smaller);
            return intersect_merge(a, b);
        case IntersectKind::kBinary:
            note(obs::KernelChoice::kBinary, smaller);
            return intersect_binary(a, b);
        case IntersectKind::kHybrid:
            note(obs::KernelChoice::kHybrid, smaller);
            return intersect_hybrid(a, b);
        case IntersectKind::kGalloping:
            note(obs::KernelChoice::kGalloping, smaller);
            return intersect_simd_galloping(a, b);
        case IntersectKind::kSimd:
            note(obs::KernelChoice::kSimdMerge, smaller);
            return intersect_simd_merge(a, b);
        case IntersectKind::kBitmap:
            // No hub coverage: degrade exactly like the span-only
            // seq::intersect() entry point, so the named kernel charges the
            // same ops on every call path.
            [[fallthrough]];
        case IntersectKind::kAdaptive: {
            obs::KernelChoice bitmap_choice = obs::KernelChoice::kBitmapProbe;
            if (auto r = try_bitmap(hubs_, a, b, a_id, b_id, nullptr, bitmap_choice)) {
                if (stats_ != nullptr) {
                    ++stats_->hub_hits;
                    stats_->record(bitmap_choice, smaller);
                }
                return *r;
            }
            if (stats_ != nullptr && hubs_ != nullptr && !hubs_->empty()) {
                ++stats_->hub_misses;
            }
            if (probe_search_pays_off(a.size(), b.size())) {
                note(obs::KernelChoice::kGalloping, smaller);
                return intersect_simd_galloping(a, b);
            }
            note(obs::KernelChoice::kSimdMerge, smaller);
            return intersect_simd_merge(a, b);
        }
    }
    return {};
}

IntersectResult AdaptiveIntersect::collect(std::span<const graph::VertexId> a,
                                           std::span<const graph::VertexId> b,
                                           std::vector<graph::VertexId>& out,
                                           graph::VertexId a_id,
                                           graph::VertexId b_id) const {
    const std::size_t smaller = std::min(a.size(), b.size());
    switch (kind_) {
        case IntersectKind::kMerge:
        case IntersectKind::kBinary:
        case IntersectKind::kHybrid:
            note(obs::KernelChoice::kMerge, smaller);
            return intersect_merge_collect(a, b, out);
        case IntersectKind::kGalloping:
            note(obs::KernelChoice::kGalloping, smaller);
            return intersect_simd_galloping_collect(a, b, out);
        case IntersectKind::kSimd:
            note(obs::KernelChoice::kSimdMerge, smaller);
            return intersect_simd_merge_collect(a, b, out);
        case IntersectKind::kBitmap:
            [[fallthrough]];  // no hub coverage degrades like kAdaptive
        case IntersectKind::kAdaptive: {
            obs::KernelChoice bitmap_choice = obs::KernelChoice::kBitmapProbe;
            if (auto r = try_bitmap(hubs_, a, b, a_id, b_id, &out, bitmap_choice)) {
                if (stats_ != nullptr) {
                    ++stats_->hub_hits;
                    stats_->record(bitmap_choice, smaller);
                }
                return *r;
            }
            if (stats_ != nullptr && hubs_ != nullptr && !hubs_->empty()) {
                ++stats_->hub_misses;
            }
            if (probe_search_pays_off(a.size(), b.size())) {
                note(obs::KernelChoice::kGalloping, smaller);
                return intersect_simd_galloping_collect(a, b, out);
            }
            note(obs::KernelChoice::kSimdMerge, smaller);
            return intersect_simd_merge_collect(a, b, out);
        }
    }
    return {};
}

}  // namespace katric::seq
