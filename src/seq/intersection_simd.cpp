#include "seq/intersection_simd.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>

#if defined(KATRIC_ENABLE_SIMD) && (defined(__x86_64__) || defined(_M_X64)) \
    && (defined(__GNUC__) || defined(__clang__))
#define KATRIC_SIMD_X86 1
#include <immintrin.h>
#else
#define KATRIC_SIMD_X86 0
#endif

namespace katric::seq {

namespace {

std::atomic<bool> g_force_scalar{false};

bool cpu_has_avx2() noexcept {
#if KATRIC_SIMD_X86
    // Cached once: cpuid is not free and the answer never changes. The
    // KATRIC_FORCE_SCALAR env var is the headless/CI override.
    static const bool supported = [] {
        if (const char* env = std::getenv("KATRIC_FORCE_SCALAR");
            env != nullptr && env[0] != '\0' && env[0] != '0') {
            return false;
        }
        return __builtin_cpu_supports("avx2") != 0;
    }();
    return supported;
#else
    return false;
#endif
}

#if KATRIC_SIMD_X86

/// 4-bit lane mask (bit k set ⇔ lane k of `match` is all-ones).
__attribute__((target("avx2"))) inline int lane_mask(__m256i match) noexcept {
    return _mm256_movemask_pd(_mm256_castsi256_pd(match));
}

/// All-pairs equality of two 4×64 blocks: bit k of the result is set iff
/// va's lane k equals *some* lane of vb (three lane rotations cover every
/// pairing). Sorted duplicate-free inputs guarantee at most one partner per
/// lane, so the popcount of the mask is the number of matching pairs.
__attribute__((target("avx2"))) inline int block_match_mask(__m256i va,
                                                            __m256i vb) noexcept {
    __m256i match = _mm256_cmpeq_epi64(va, vb);
    __m256i rot = _mm256_permute4x64_epi64(vb, _MM_SHUFFLE(0, 3, 2, 1));
    match = _mm256_or_si256(match, _mm256_cmpeq_epi64(va, rot));
    rot = _mm256_permute4x64_epi64(vb, _MM_SHUFFLE(1, 0, 3, 2));
    match = _mm256_or_si256(match, _mm256_cmpeq_epi64(va, rot));
    rot = _mm256_permute4x64_epi64(vb, _MM_SHUFFLE(2, 1, 0, 3));
    match = _mm256_or_si256(match, _mm256_cmpeq_epi64(va, rot));
    return lane_mask(match);
}

/// Block merge over full 4-lane blocks; the caller finishes the scalar tail
/// from the returned (i, j). Every (a-block, b-block) cell on the staircase
/// is visited exactly once, so counting matches per cell never double
/// counts, and lane-order emission keeps collect output ascending.
template <typename OnMatchMask>
__attribute__((target("avx2"))) void block_merge_avx2(
    std::span<const graph::VertexId> a, std::span<const graph::VertexId> b,
    std::size_t& i, std::size_t& j, IntersectResult& result, OnMatchMask&& on_mask) {
    while (i + 4 <= a.size() && j + 4 <= b.size()) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.data() + i));
        const __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.data() + j));
        const int mask = block_match_mask(va, vb);
        result.ops += kSimdMergeBlockOps;
        if (mask != 0) {
            result.count += static_cast<std::uint64_t>(std::popcount(
                static_cast<unsigned>(mask)));
            on_mask(i, mask);
        }
        const graph::VertexId a_max = a[i + 3];
        const graph::VertexId b_max = b[j + 3];
        if (a_max <= b_max) { i += 4; }
        if (b_max <= a_max) { j += 4; }
    }
}

/// One 4-lane window compare at `pos`: returns how many of the four
/// elements are < needle (0…4). Sorted input makes the lane mask a
/// contiguous low-bit run, so popcount is the in-window lower bound.
/// AVX2 only has a *signed* 64-bit compare; XOR-ing both sides with the
/// sign bit maps unsigned order onto signed order, so IDs with bit 63 set
/// (e.g. flag-annotated words) still compare exactly like the scalar
/// kernels.
__attribute__((target("avx2"))) inline unsigned window_less_count(
    const graph::VertexId* data, graph::VertexId needle) noexcept {
    const __m256i sign = _mm256_set1_epi64x(static_cast<long long>(1ull << 63));
    const __m256i window = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data)), sign);
    const __m256i pivot =
        _mm256_xor_si256(_mm256_set1_epi64x(static_cast<long long>(needle)), sign);
    const int less = lane_mask(_mm256_cmpgt_epi64(pivot, window));
    return static_cast<unsigned>(std::popcount(static_cast<unsigned>(less)));
}

#endif  // KATRIC_SIMD_X86

void scalar_merge_tail(std::span<const graph::VertexId> a,
                       std::span<const graph::VertexId> b, std::size_t i,
                       std::size_t j, IntersectResult& result,
                       std::vector<graph::VertexId>* out) {
    while (i < a.size() && j < b.size()) {
        ++result.ops;
        if (a[i] < b[j]) {
            ++i;
        } else if (b[j] < a[i]) {
            ++j;
        } else {
            ++result.count;
            if (out != nullptr) { out->push_back(a[i]); }
            ++i;
            ++j;
        }
    }
}

IntersectResult simd_merge_impl(std::span<const graph::VertexId> a,
                                std::span<const graph::VertexId> b,
                                std::vector<graph::VertexId>* out) {
#if KATRIC_SIMD_X86
    IntersectResult result;
    std::size_t i = 0;
    std::size_t j = 0;
    if (out == nullptr) {
        block_merge_avx2(a, b, i, j, result, [](std::size_t, int) {});
    } else {
        block_merge_avx2(a, b, i, j, result, [&](std::size_t base, int mask) {
            for (unsigned lane = 0; lane < 4; ++lane) {
                if ((mask & (1 << lane)) != 0) { out->push_back(a[base + lane]); }
            }
        });
    }
    scalar_merge_tail(a, b, i, j, result, out);
    return result;
#else
    IntersectResult result;
    scalar_merge_tail(a, b, 0, 0, result, out);
    return result;
#endif
}

IntersectResult simd_galloping_impl(std::span<const graph::VertexId> small,
                                    std::span<const graph::VertexId> large,
                                    std::vector<graph::VertexId>* out) {
    IntersectResult result;
#if KATRIC_SIMD_X86
    std::size_t pos = 0;
    for (const graph::VertexId x : small) {
        if (pos + 4 <= large.size()) {
            ++result.ops;
            const unsigned less = window_less_count(large.data() + pos, x);
            if (less < 4) {
                pos += less;
            } else {
                pos = gallop_lower_bound(large, pos + 4, x, result.ops);
            }
        } else {
            pos = gallop_lower_bound(large, pos, x, result.ops);
        }
        if (pos == large.size()) { break; }
        ++result.ops;
        if (large[pos] == x) {
            ++result.count;
            if (out != nullptr) { out->push_back(x); }
            ++pos;
        }
    }
#else
    (void)small;
    (void)large;
    (void)out;
#endif
    return result;
}

}  // namespace

bool simd_available() noexcept {
    return cpu_has_avx2() && !g_force_scalar.load(std::memory_order_relaxed);
}

void force_scalar_simd(bool force) noexcept {
    g_force_scalar.store(force, std::memory_order_relaxed);
}

IntersectResult intersect_simd_merge(std::span<const graph::VertexId> a,
                                     std::span<const graph::VertexId> b) noexcept {
    if (!simd_available()) { return intersect_merge(a, b); }
    return simd_merge_impl(a, b, nullptr);
}

IntersectResult intersect_simd_merge_collect(std::span<const graph::VertexId> a,
                                             std::span<const graph::VertexId> b,
                                             std::vector<graph::VertexId>& out) {
    if (!simd_available()) { return intersect_merge_collect(a, b, out); }
    return simd_merge_impl(a, b, &out);
}

IntersectResult intersect_simd_galloping(std::span<const graph::VertexId> a,
                                         std::span<const graph::VertexId> b) noexcept {
    if (!simd_available()) { return intersect_galloping(a, b); }
    if (a.size() > b.size()) { return intersect_simd_galloping(b, a); }
    return simd_galloping_impl(a, b, nullptr);
}

IntersectResult intersect_simd_galloping_collect(std::span<const graph::VertexId> a,
                                                 std::span<const graph::VertexId> b,
                                                 std::vector<graph::VertexId>& out) {
    if (!simd_available()) { return intersect_galloping_collect(a, b, out); }
    const bool a_small = a.size() <= b.size();
    return simd_galloping_impl(a_small ? a : b, a_small ? b : a, &out);
}

}  // namespace katric::seq
