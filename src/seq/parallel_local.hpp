#pragma once

#include <cstdint>

#include "graph/csr_graph.hpp"
#include "seq/intersection.hpp"

namespace katric::seq {

/// Shared-memory (OpenMP) triangle count on an oriented graph using the
/// edge-centric strategy of Section IV-D: intersections for each directed
/// edge (v,u) are independent, so a dynamic schedule over vertices with
/// per-thread accumulators gives the work-stealing-like balance Green et al.
/// report, without a preprocessing partition step.
struct ParallelCountResult {
    std::uint64_t triangles = 0;
    std::uint64_t ops = 0;           ///< summed over threads
    std::uint64_t max_thread_ops = 0;  ///< critical-path work (load balance)
    int threads = 1;
    double wall_seconds = 0.0;
};

[[nodiscard]] ParallelCountResult count_oriented_parallel(
    const graph::CsrGraph& oriented, int num_threads,
    IntersectKind kind = IntersectKind::kMerge);

}  // namespace katric::seq
