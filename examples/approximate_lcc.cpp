// Exact vs approximate global counting (Section IV-E): how much
// communication does the Bloom-filter global phase save, and what does the
// estimate cost in accuracy? Also demonstrates DOULION-style sampling with
// the distributed counter as a black box.

#include <cmath>
#include <iostream>
#include <sstream>

#include "core/approx.hpp"
#include "core/runner.hpp"
#include "gen/proxies.hpp"
#include "util/table.hpp"

int main() {
    using namespace katric;

    const auto g = gen::build_proxy("twitter");
    std::cout << "instance: twitter-proxy n=" << g.num_vertices()
              << " m=" << g.num_edges() << "\n\n";

    core::RunSpec spec;
    spec.algorithm = core::Algorithm::kCetric;
    spec.num_ranks = 16;

    const auto exact = core::count_triangles(g, spec);
    const auto exact_count = static_cast<double>(exact.triangles);
    std::cout << "exact CETRIC: " << exact.triangles << " triangles, "
              << exact.total_words_sent << " words shipped, simulated "
              << exact.total_time << " s\n\n";

    Table table({"method", "estimate", "rel err (%)", "volume (words)",
                 "volume saved (%)"});
    table.row()
        .cell("exact CETRIC")
        .cell(exact_count, 0)
        .cell(0.0, 3)
        .cell(exact.total_words_sent)
        .cell(0.0, 1);
    for (const double fpr : {0.1, 0.02, 0.005}) {
        core::AmqOptions amq;
        amq.target_fpr = fpr;
        const auto approx = core::count_triangles_cetric_amq(g, spec, amq);
        std::ostringstream name;
        name << "CETRIC-AMQ fpr=" << fpr;
        table.row()
            .cell(name.str())
            .cell(approx.estimated_triangles, 0)
            .cell(100.0 * std::abs(approx.estimated_triangles - exact_count)
                      / exact_count,
                  3)
            .cell(approx.metrics.total_words_sent)
            .cell(100.0
                      * (1.0
                         - static_cast<double>(approx.metrics.total_words_sent)
                               / static_cast<double>(exact.total_words_sent)),
                  1);
    }
    for (const double keep : {0.25, 0.5}) {
        const auto sparse = core::sparsify_doulion(g, keep, 7);
        const auto run = core::count_triangles(sparse, spec);
        const double estimate =
            static_cast<double>(run.triangles) * core::doulion_scale(keep);
        std::ostringstream name;
        name << "DOULION q=" << keep;
        table.row()
            .cell(name.str())
            .cell(estimate, 0)
            .cell(100.0 * std::abs(estimate - exact_count) / exact_count, 3)
            .cell(run.total_words_sent)
            .cell(100.0
                      * (1.0
                         - static_cast<double>(run.total_words_sent)
                               / static_cast<double>(exact.total_words_sent)),
                  1);
    }
    table.print(std::cout);
    std::cout << "\nThe AMQ variant keeps type-1/2 counts exact and still supports "
                 "local clustering coefficients; edge sampling only estimates the "
                 "global count.\n";
    return 0;
}
