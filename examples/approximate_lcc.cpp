// Exact vs approximate global counting (Section IV-E): how much
// communication does the Bloom-filter global phase save, and what does the
// estimate cost in accuracy? The exact run and the whole AMQ sweep share
// one Engine build — the facade's multi-query amortization in its natural
// habitat. Also demonstrates DOULION-style sampling with the distributed
// counter as a black box.

#include <cmath>
#include <iostream>
#include <sstream>

#include "gen/proxies.hpp"
#include "katric.hpp"
#include "util/table.hpp"

int main() {
    using namespace katric;

    const auto g = gen::build_proxy("twitter");
    std::cout << "instance: twitter-proxy n=" << g.num_vertices()
              << " m=" << g.num_edges() << "\n\n";

    Config config;
    config.algorithm = core::Algorithm::kCetric;
    config.num_ranks = 16;

    // One build serves the exact count and every AMQ configuration.
    Engine engine(g, config);
    const auto exact = engine.count();
    const auto exact_count = static_cast<double>(exact.count.triangles);
    std::cout << "exact CETRIC: " << exact.count.triangles << " triangles, "
              << exact.count.total_words_sent << " words shipped, simulated "
              << exact.count.total_time << " s\n\n";

    Table table({"method", "estimate", "rel err (%)", "volume (words)",
                 "volume saved (%)"});
    table.row()
        .cell("exact CETRIC")
        .cell(exact_count, 0)
        .cell(0.0, 3)
        .cell(exact.count.total_words_sent)
        .cell(0.0, 1);
    for (const double fpr : {0.1, 0.02, 0.005}) {
        core::AmqOptions amq;
        amq.target_fpr = fpr;
        const auto approx = engine.approx_count(amq);
        std::ostringstream name;
        name << "CETRIC-AMQ fpr=" << fpr;
        table.row()
            .cell(name.str())
            .cell(approx.estimated_triangles, 0)
            .cell(100.0 * std::abs(approx.estimated_triangles - exact_count)
                      / exact_count,
                  3)
            .cell(approx.count.total_words_sent)
            .cell(100.0
                      * (1.0
                         - static_cast<double>(approx.count.total_words_sent)
                               / static_cast<double>(exact.count.total_words_sent)),
                  1);
    }
    for (const double keep : {0.25, 0.5}) {
        // Sampling changes the graph itself, so each run needs its own build.
        const auto sparse = core::sparsify_doulion(g, keep, 7);
        Engine sparse_engine(sparse, config);
        const auto run = sparse_engine.count();
        const double estimate =
            static_cast<double>(run.count.triangles) * core::doulion_scale(keep);
        std::ostringstream name;
        name << "DOULION q=" << keep;
        table.row()
            .cell(name.str())
            .cell(estimate, 0)
            .cell(100.0 * std::abs(estimate - exact_count) / exact_count, 3)
            .cell(run.count.total_words_sent)
            .cell(100.0
                      * (1.0
                         - static_cast<double>(run.count.total_words_sent)
                               / static_cast<double>(exact.count.total_words_sent)),
                  1);
    }
    table.print(std::cout);
    std::cout << "\nThe AMQ variant keeps type-1/2 counts exact and still supports "
                 "local clustering coefficients; edge sampling only estimates the "
                 "global count. All AMQ rows ran "
              << engine.queries_run() << " queries against " << engine.build_passes()
              << " build pass.\n";
    return 0;
}
