// Interactive experiment driver: pick any generator or proxy instance, any
// algorithm, any PE count and machine preset, and get the full metric set.
// Useful for exploring regimes the canned benches do not cover.

#include <iostream>

#include "core/runner.hpp"
#include "gen/gnm.hpp"
#include "gen/grid.hpp"
#include "gen/proxies.hpp"
#include "gen/rgg2d.hpp"
#include "gen/rhg.hpp"
#include "gen/rmat.hpp"
#include "seq/edge_iterator.hpp"
#include "util/bits.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

katric::graph::CsrGraph build_instance(const std::string& name,
                                       katric::graph::VertexId n, std::uint64_t seed) {
    using namespace katric;
    if (name == "rgg2d") {
        return gen::generate_rgg2d(n, gen::rgg2d_radius_for_degree(n, 16.0), seed);
    }
    if (name == "rhg") { return gen::generate_rhg(n, 16.0, 2.8, seed); }
    if (name == "gnm") { return gen::generate_gnm(n, 16 * n, seed); }
    if (name == "rmat") {
        return gen::generate_rmat(static_cast<std::uint32_t>(katric::ceil_log2(n)),
                                  16 * n, seed);
    }
    if (name == "grid") {
        const auto side = katric::isqrt(n);
        return gen::generate_grid_road(side, side, 0.95, 0.05, seed);
    }
    return gen::build_proxy(name);  // one of the Table I proxies
}

}  // namespace

int main(int argc, char** argv) {
    using namespace katric;
    CliParser cli("scaling_explorer",
                  "run any algorithm on any instance at any scale and print all "
                  "metrics");
    cli.option("instance", "rgg2d",
               "rgg2d|rhg|gnm|rmat|grid or a Table I proxy name (e.g. orkut)");
    cli.option("log-n", "13", "log2 vertex count for generated instances");
    cli.option("ps", "1,4,16,64", "PE counts to sweep");
    cli.option("algo", "CETRIC", "algorithm name (see DESIGN.md)");
    cli.option("network", "supermuc", "supermuc|cloud");
    cli.option("threads", "1", "threads per rank (hybrid local phase)");
    cli.option("seed", "42", "generator seed");
    if (!cli.parse(argc, argv)) { return 0; }

    const auto g = build_instance(cli.get_string("instance"),
                                  graph::VertexId{1} << cli.get_uint("log-n"),
                                  cli.get_uint("seed"));
    std::cout << "instance " << cli.get_string("instance") << ": n=" << g.num_vertices()
              << " m=" << g.num_edges()
              << "  (sequential count: " << seq::count_edge_iterator(g).triangles
              << ")\n\n";

    core::Algorithm algorithm = core::Algorithm::kCetric;
    for (const auto candidate : core::all_algorithms()) {
        if (core::algorithm_name(candidate) == cli.get_string("algo")) {
            algorithm = candidate;
        }
    }

    Table table({"p", "time (s)", "preproc", "local", "contract", "global", "reduce",
                 "max msgs", "bottleneck vol", "peak buf", "triangles"});
    for (const auto p : cli.get_uint_list("ps")) {
        core::RunSpec spec;
        spec.algorithm = algorithm;
        spec.num_ranks = static_cast<graph::Rank>(p);
        spec.network =
            cli.get_string("network") == "cloud" ? net::NetworkConfig::cloud_like()
                                                 : net::NetworkConfig::supermuc_like();
        spec.options.threads = static_cast<int>(cli.get_uint("threads"));
        const auto result = core::count_triangles(g, spec);
        table.row()
            .cell(p)
            .cell(result.oom ? std::string("OOM") : std::to_string(result.total_time))
            .cell(result.preprocessing_time, 5)
            .cell(result.local_time, 5)
            .cell(result.contraction_time, 5)
            .cell(result.global_time, 5)
            .cell(result.reduce_time, 5)
            .cell(result.max_messages_sent)
            .cell(result.max_words_sent)
            .cell(result.max_peak_buffer_words)
            .cell(result.triangles);
    }
    table.print(std::cout);
    return 0;
}
