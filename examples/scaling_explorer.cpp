// Interactive experiment driver: pick any generator or proxy instance, any
// algorithm, any PE count and machine preset, and get the full metric set.
// Useful for exploring regimes the canned benches do not cover. The whole
// configuration surface is katric::Config's shared flag set (--algorithm,
// --ranks, --network, --intersect, ...), plus a --ps sweep that overrides
// --ranks per run.

#include <iostream>

#include "gen/gnm.hpp"
#include "gen/grid.hpp"
#include "gen/proxies.hpp"
#include "gen/rgg2d.hpp"
#include "gen/rhg.hpp"
#include "gen/rmat.hpp"
#include "katric.hpp"
#include "seq/edge_iterator.hpp"
#include "util/bits.hpp"
#include "util/table.hpp"

namespace {

katric::graph::CsrGraph build_instance(const std::string& name,
                                       katric::graph::VertexId n, std::uint64_t seed) {
    using namespace katric;
    if (name == "rgg2d") {
        return gen::generate_rgg2d(n, gen::rgg2d_radius_for_degree(n, 16.0), seed);
    }
    if (name == "rhg") { return gen::generate_rhg(n, 16.0, 2.8, seed); }
    if (name == "gnm") { return gen::generate_gnm(n, 16 * n, seed); }
    if (name == "rmat") {
        return gen::generate_rmat(static_cast<std::uint32_t>(katric::ceil_log2(n)),
                                  16 * n, seed);
    }
    if (name == "grid") {
        const auto side = katric::isqrt(n);
        return gen::generate_grid_road(side, side, 0.95, 0.05, seed);
    }
    return gen::build_proxy(name);  // one of the Table I proxies
}

}  // namespace

int main(int argc, char** argv) {
    using namespace katric;
    CliParser cli("scaling_explorer",
                  "run any algorithm on any instance at any scale and print all "
                  "metrics");
    cli.option("instance", "rgg2d",
               "rgg2d|rhg|gnm|rmat|grid or a Table I proxy name (e.g. orkut)");
    cli.option("log-n", "13", "log2 vertex count for generated instances");
    cli.option("ps", "1,4,16,64", "PE counts to sweep (overrides --ranks)");
    cli.option("seed", "42", "generator seed");
    Config defaults;
    defaults.algorithm = core::Algorithm::kCetric;
    Config::register_cli(cli, defaults);
    if (!cli.parse(argc, argv)) { return 0; }

    const auto base = Config::from_args(cli);
    const auto g = build_instance(cli.get_string("instance"),
                                  graph::VertexId{1} << cli.get_uint("log-n"),
                                  cli.get_uint("seed"));
    std::cout << "instance " << cli.get_string("instance") << ": n=" << g.num_vertices()
              << " m=" << g.num_edges()
              << "  (sequential count: " << seq::count_edge_iterator(g).triangles
              << ")\n"
              << "config: " << base.describe() << "\n\n";

    Table table({"p", "time (s)", "preproc", "local", "contract", "global", "reduce",
                 "max msgs", "bottleneck vol", "peak buf", "triangles"});
    for (const auto p : cli.get_uint_list("ps")) {
        Config config = base;
        config.num_ranks = static_cast<graph::Rank>(p);
        Engine engine(g, config);
        const auto report = engine.count();
        table.row()
            .cell(p)
            .cell(report.count.oom ? std::string("OOM")
                                   : std::to_string(report.count.total_time))
            .cell(report.count.preprocessing_time, 5)
            .cell(report.count.local_time, 5)
            .cell(report.count.contraction_time, 5)
            .cell(report.count.global_time, 5)
            .cell(report.count.reduce_time, 5)
            .cell(report.count.max_messages_sent)
            .cell(report.count.max_words_sent)
            .cell(report.count.max_peak_buffer_words)
            .cell(report.count.triangles);
    }
    table.print(std::cout);
    std::cout << "\nreproduce any row: scaling_explorer --instance "
              << cli.get_string("instance") << " " << base.to_command_line() << "\n";
    return 0;
}
