// Streaming monitor: ingest a synthetic edge stream batch by batch and
// print a rolling global triangle count plus per-batch latency — the
// dynamic-graph workload through the session facade in ~40 lines. A real
// deployment would sit in front of a social-graph ingestion pipeline and
// alert on sudden clustering changes; here the stream is synthetic churn
// over a random geometric graph.

#include <iomanip>
#include <iostream>

#include "gen/rgg2d.hpp"
#include "katric.hpp"

int main() {
    using namespace katric;

    // 1. A starting graph and a churn stream over it: 2000 timestamped
    //    events, 40% deletions, grouped into 100 ms windows.
    const graph::VertexId n = 1 << 12;
    const auto base = gen::generate_rgg2d_local(
        n, gen::rgg2d_radius_for_degree(n, 16.0), /*seed=*/7);
    const auto churn = stream::make_churn_stream(base, 2000, 0.4, /*seed=*/21);
    const auto batches = churn.batches_by_window(0.1);

    // 2. One Config covers the static and the streaming side; the engine
    //    builds the distributed state once and the stream session promotes
    //    it — no second partitioning pass.
    Config config;
    config.algorithm = core::Algorithm::kCetric;
    config.num_ranks = 16;
    Engine engine(base, config);

    std::cout << "streaming monitor: n=" << base.num_vertices()
              << " m=" << base.num_edges() << ", " << churn.size() << " events in "
              << batches.size() << " windows, p=" << config.num_ranks << "\n\n";
    std::cout << std::left << std::setw(8) << "window" << std::setw(10) << "events"
              << std::setw(10) << "+edges" << std::setw(10) << "-edges" << std::setw(12)
              << "Δtriangles" << std::setw(14) << "triangles" << "latency (ms)\n";

    // 3. Ingest. The observer fires after each committed batch — the hook a
    //    monitoring loop would use to publish the rolling count.
    const Report report = engine.stream(
        batches, [](const stream::BatchStats& stats) {
            std::cout << std::left << std::setw(8) << stats.batch_index << std::setw(10)
                      << stats.events << std::setw(10) << stats.net_inserts
                      << std::setw(10) << stats.net_deletes << std::setw(12)
                      << stats.delta << std::setw(14) << stats.triangles << std::fixed
                      << std::setprecision(3) << stats.seconds * 1e3
                      << std::defaultfloat << "\n";
        });

    std::cout << "\ninitial count: " << report.initial.triangles << " (static "
              << core::algorithm_name(config.algorithm) << ", "
              << report.initial.total_time << " s simulated)\n"
              << "final count:   " << report.count.triangles << " after "
              << report.batches.size() << " batches, " << report.stream_seconds
              << " s simulated stream time\n";
    return 0;
}
