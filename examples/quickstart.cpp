// Quickstart: generate a graph, count its triangles on a simulated
// distributed machine with CETRIC, and inspect the result — the five-minute
// tour of the public API.

#include <iostream>

#include "core/runner.hpp"
#include "gen/rgg2d.hpp"
#include "seq/edge_iterator.hpp"

int main() {
    using namespace katric;

    // 1. Build an input graph. Any CsrGraph works: generated (gen::*),
    //    loaded from disk (graph::read_edge_list_text / read_binary), or
    //    assembled from an EdgeList.
    const graph::VertexId n = 1 << 14;
    const auto graph = gen::generate_rgg2d_local(
        n, gen::rgg2d_radius_for_degree(n, 16.0), /*seed=*/42);
    std::cout << "input: random geometric graph, n=" << graph.num_vertices()
              << ", m=" << graph.num_edges() << "\n";

    // 2. Configure a run: algorithm, simulated PE count, machine model.
    core::RunSpec spec;
    spec.algorithm = core::Algorithm::kCetric;  // the paper's contraction variant
    spec.num_ranks = 16;                        // simulated MPI ranks
    spec.network = net::NetworkConfig::supermuc_like();

    // 3. Count.
    const auto result = core::count_triangles(graph, spec);

    std::cout << "triangles:            " << result.triangles << "\n"
              << "  found locally:      " << result.local_phase_triangles
              << " (type 1+2, zero communication)\n"
              << "  found globally:     " << result.global_phase_triangles
              << " (type 3, on the contracted cut graph)\n"
              << "simulated time:       " << result.total_time << " s\n"
              << "  preprocessing:      " << result.preprocessing_time << " s\n"
              << "  local phase:        " << result.local_time << " s\n"
              << "  contraction:        " << result.contraction_time << " s\n"
              << "  global phase:       " << result.global_time << " s\n"
              << "bottleneck volume:    " << result.max_words_sent << " words\n"
              << "max msgs from one PE: " << result.max_messages_sent << "\n";

    // 4. Sanity-check against the sequential reference.
    const auto reference = seq::count_edge_iterator(graph).triangles;
    std::cout << "sequential reference: " << reference
              << (reference == result.triangles ? "  [match]" : "  [MISMATCH!]")
              << "\n";
    return reference == result.triangles ? 0 : 1;
}
