// Quickstart: generate a graph, build a katric::Engine session, count its
// triangles on a simulated distributed machine with CETRIC, and inspect the
// unified Report — the five-minute tour of the public API.

#include <iostream>

#include "katric.hpp"

int main() {
    using namespace katric;

    // 1. Build an input graph. Any CsrGraph works: generated (gen::*),
    //    loaded from disk (graph::read_edge_list_text / read_binary), or
    //    assembled from an EdgeList.
    const graph::VertexId n = 1 << 14;
    const auto graph = gen::generate_rgg2d_local(
        n, gen::rgg2d_radius_for_degree(n, 16.0), /*seed=*/42);
    std::cout << "input: random geometric graph, n=" << graph.num_vertices()
              << ", m=" << graph.num_edges() << "\n";

    // 2. One configuration surface: algorithm, simulated PE count, machine
    //    model, kernels — all in katric::Config (presets and a full CLI
    //    round-trip included; see Config::preset / Config::from_flags).
    Config config;
    config.algorithm = core::Algorithm::kCetric;  // the paper's contraction variant
    config.num_ranks = 16;                        // simulated MPI ranks
    config.network = net::NetworkConfig::supermuc_like();

    // 3. Build the distributed state once — partition + every PE's local
    //    view — then query. The same engine could now also serve lcc(),
    //    enumerate(), approx_count(), or open_stream() with no rebuild.
    Engine engine(graph, config);
    const Report report = engine.count();

    std::cout << "triangles:            " << report.count.triangles << "\n"
              << "  found locally:      " << report.count.local_phase_triangles
              << " (type 1+2, zero communication)\n"
              << "  found globally:     " << report.count.global_phase_triangles
              << " (type 3, on the contracted cut graph)\n"
              << "simulated time:       " << report.count.total_time << " s\n"
              << "  preprocessing:      " << report.count.preprocessing_time << " s\n"
              << "  local phase:        " << report.count.local_time << " s\n"
              << "  contraction:        " << report.count.contraction_time << " s\n"
              << "  global phase:       " << report.count.global_time << " s\n"
              << "bottleneck volume:    " << report.count.max_words_sent << " words\n"
              << "max msgs from one PE: " << report.count.max_messages_sent << "\n"
              << "kernel ops (total):   " << report.total_compute_ops << "\n";

    // 4. Every Report speaks JSON through the one shared emitter.
    std::cout << "\nas JSON:\n" << report.to_json();

    // 5. Sanity-check against the sequential reference.
    const auto reference = seq::count_edge_iterator(graph).triangles;
    std::cout << "sequential reference: " << reference
              << (reference == report.count.triangles ? "  [match]" : "  [MISMATCH!]")
              << "\n";
    return reference == report.count.triangles ? 0 : 1;
}
