// Streaming LCC monitor: maintain per-vertex local clustering coefficients
// over a live edge stream and flag the vertices whose neighborhoods change
// the most per window. A real deployment watches for exactly this — a
// vertex whose LCC collapses is a hub whose community is dissolving, one
// whose LCC spikes is joining a tight cluster (spam rings, fraud cliques).
// Here the stream is synthetic churn over a random geometric graph, driven
// through an Engine stream session with LCC maintenance enabled.

#include <cmath>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "gen/rgg2d.hpp"
#include "katric.hpp"

int main() {
    using namespace katric;

    // 1. A starting graph and a churn stream: 1200 timestamped events, 40%
    //    deletions, grouped into 100 ms windows.
    const graph::VertexId n = 1 << 10;
    const auto base = gen::generate_rgg2d_local(
        n, gen::rgg2d_radius_for_degree(n, 16.0), /*seed=*/7);
    const auto churn = stream::make_churn_stream(base, 1200, 0.4, /*seed=*/21);
    const auto batches = churn.batches_by_window(0.1);

    // 2. maintain_lcc makes the session's static seed pass an LCC run and
    //    attaches the incremental Δ tracker — per batch, the counter pays
    //    one extra Δ-flush phase and every LCC(v) stays current.
    Config config;
    config.algorithm = core::Algorithm::kCetric;
    config.num_ranks = 8;
    config.maintain_lcc = true;
    Engine engine(base, config);
    auto session = engine.open_stream();

    std::cout << "streaming LCC monitor: n=" << base.num_vertices()
              << " m=" << base.num_edges() << ", " << churn.size() << " events in "
              << batches.size() << " windows, p=" << config.num_ranks << "\n\n";
    std::cout << std::left << std::setw(8) << "window" << std::setw(9) << "+edges"
              << std::setw(9) << "-edges" << std::setw(12) << "triangles"
              << std::setw(10) << "avg LCC" << std::setw(22) << "biggest mover"
              << "latency (ms)\n";

    // 3. Ingest window by window; after each Δ flush the full LCC vector is
    //    current, so the monitor can rank movers immediately.
    auto previous = session.lcc();
    for (const auto& batch : batches) {
        const auto& stats = session.ingest(batch);
        const auto current = session.lcc();

        double sum = 0.0;
        graph::VertexId mover = 0;
        double biggest = 0.0;
        for (graph::VertexId v = 0; v < current.size(); ++v) {
            sum += current[v];
            const double change = std::abs(current[v] - previous[v]);
            if (change > biggest) {
                biggest = change;
                mover = v;
            }
        }
        std::ostringstream mover_text;
        mover_text << "v" << mover << " (" << std::showpos << std::fixed
                   << std::setprecision(3) << current[mover] - previous[mover] << ")";
        std::cout << std::left << std::setw(8) << stats.batch_index << std::setw(9)
                  << stats.net_inserts << std::setw(9) << stats.net_deletes
                  << std::setw(12) << stats.triangles << std::setw(10) << std::fixed
                  << std::setprecision(4) << sum / static_cast<double>(current.size())
                  << std::setw(22) << (biggest > 0.0 ? mover_text.str() : "—")
                  << std::setprecision(3) << (stats.seconds + stats.lcc_seconds) * 1e3
                  << std::defaultfloat << "\n";
        previous = current;
    }

    const auto report = session.report();
    std::cout << "\nfinal: " << report.count.triangles << " triangles after "
              << report.batches.size() << " windows, " << report.stream_seconds
              << " s simulated\n"
              << "(per-window cost = incremental count + one Δ-flush phase; a full "
                 "compute_distributed_lcc would pay the whole pipeline per window — "
                 "see bench_stream_lcc)\n";
    return 0;
}
