// Triangle census: exercise the two remaining public-API pillars together —
// the distributed input pipeline (per-PE generation, no global graph during
// the simulated run) and exactly-once triangle enumeration — then profile
// where in the machine the triangles were found.

#include <algorithm>
#include <iostream>

#include "core/dist_input.hpp"
#include "graph/builder.hpp"
#include "katric.hpp"
#include "util/table.hpp"

int main() {
    using namespace katric;
    const graph::Rank p = 12;

    // 1. Generate the instance *on the machine*: each simulated PE creates
    //    its chunk and edges are routed to their owners in one sparse
    //    all-to-all. The input cost is charged like any other phase.
    core::DistInputSpec input;
    input.family = core::SyntheticFamily::kRmat;
    input.n = 1 << 12;
    input.m = (1 << 12) * 16;
    input.seed = 2023;
    const auto partition = graph::Partition1D::uniform(input.n, p);
    net::Simulator sim(p, net::NetworkConfig::supermuc_like());
    auto piped = core::generate_distributed(sim, partition, input);
    std::cout << "distributed input: R-MAT n=" << input.n << ", " << input.m
              << " edge slots, " << piped.exchanged_words
              << " words redistributed in " << piped.input_time << " s (simulated)\n";

    // 2. Count on the piped views.
    core::RunSpec spec;
    spec.algorithm = core::Algorithm::kCetric2;
    spec.num_ranks = p;
    const auto count = core::dispatch_algorithm(sim, piped.views, spec);
    std::cout << "triangles: " << count.triangles << " (type 1+2: "
              << count.local_phase_triangles << ", type 3: "
              << count.global_phase_triangles << "), total simulated time "
              << sim.time() << " s including input\n\n";

    // 3. Enumerate (host-side graph reassembly only for the census run) and
    //    profile the per-PE discovery load — an Engine query against the
    //    reassembled graph.
    graph::EdgeList all;
    for (const auto& view : piped.views) {
        for (graph::VertexId v = view.first_local();
             v < view.first_local() + view.num_local(); ++v) {
            for (graph::VertexId u : view.neighbors(v)) {
                if (v < u || !view.is_local(u)) { all.add(v, u); }
            }
        }
    }
    const auto global = graph::build_undirected(std::move(all), input.n);
    Engine engine(global, Config::from_run_spec(spec));
    const auto census = engine.enumerate();
    std::cout << "enumerated " << census.triangles.size()
              << " distinct triangles (exactly-once verified)\n";
    std::cout << "first: {" << census.triangles.front().a << ","
              << census.triangles.front().b << "," << census.triangles.front().c
              << "}  last: {" << census.triangles.back().a << ","
              << census.triangles.back().b << "," << census.triangles.back().c << "}\n\n";

    Table table({"rank", "triangles found", "share (%)"});
    for (graph::Rank r = 0; r < p; ++r) {
        table.row()
            .cell(std::uint64_t{r})
            .cell(static_cast<std::uint64_t>(census.found_per_rank[r]))
            .cell(100.0 * static_cast<double>(census.found_per_rank[r])
                      / static_cast<double>(std::max<std::size_t>(
                            census.triangles.size(), 1)),
                  1);
    }
    table.print(std::cout);
    std::cout << "\nSkewed discovery shares on R-MAT illustrate why Section IV-D "
                 "discusses load balancing.\n";
    return census.triangles.size() == count.triangles ? 0 : 1;
}
