// Spam-page detection via local clustering coefficients — the application
// from the paper's introduction (Becchetti et al.): spam pages form dense
// link farms whose neighborhoods are abnormally triangle-rich, while their
// hub pages link broadly with few closed wedges. Flag vertices whose LCC is
// an outlier for their degree class.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>
#include <vector>

#include "gen/proxies.hpp"
#include "katric.hpp"
#include "util/table.hpp"

int main() {
    using namespace katric;

    // A web-crawl stand-in (RHG, natural crawl-order locality).
    const auto web = gen::build_proxy("webbase-2001");
    std::cout << "web graph: n=" << web.num_vertices() << ", m=" << web.num_edges()
              << "\n";

    // Distributed LCC with CETRIC on 32 simulated PEs, through the session
    // facade (a follow-up query — count(), enumerate() — would reuse the
    // build for free).
    Config config;
    config.algorithm = core::Algorithm::kCetric;
    config.num_ranks = 32;
    Engine engine(web, config);
    const auto result = engine.lcc();
    std::cout << "triangles=" << result.count.triangles << ", simulated time "
              << result.count.total_time << " s (incl. " << result.postprocess_time
              << " s Δ-aggregation)\n\n";

    // Per-degree-bucket LCC statistics: spam candidates sit far from their
    // bucket's typical value.
    struct Bucket {
        double sum = 0.0;
        std::uint64_t count = 0;
    };
    std::map<int, Bucket> buckets;
    auto bucket_of = [](graph::Degree d) {
        return static_cast<int>(std::floor(std::log2(static_cast<double>(d))));
    };
    for (graph::VertexId v = 0; v < web.num_vertices(); ++v) {
        if (web.degree(v) < 4) { continue; }
        auto& bucket = buckets[bucket_of(web.degree(v))];
        bucket.sum += result.lcc[v];
        ++bucket.count;
    }

    struct Suspect {
        graph::VertexId vertex;
        graph::Degree degree;
        double lcc;
        double bucket_mean;
    };
    std::vector<Suspect> suspects;
    for (graph::VertexId v = 0; v < web.num_vertices(); ++v) {
        const auto d = web.degree(v);
        if (d < 16) { continue; }  // only hubs are interesting
        const auto& bucket = buckets[bucket_of(d)];
        const double mean = bucket.sum / static_cast<double>(bucket.count);
        // Link-farm signature: clustering far above the degree-class norm.
        if (result.lcc[v] > 4.0 * mean && result.lcc[v] > 0.2) {
            suspects.push_back({v, d, result.lcc[v], mean});
        }
    }
    std::sort(suspects.begin(), suspects.end(),
              [](const Suspect& a, const Suspect& b) { return a.lcc > b.lcc; });

    std::cout << "degree-class LCC profile:\n";
    Table profile({"degree class", "vertices", "mean LCC"});
    for (const auto& [log_degree, bucket] : buckets) {
        profile.row()
            .cell(std::string("2^") + std::to_string(log_degree))
            .cell(bucket.count)
            .cell(bucket.sum / static_cast<double>(bucket.count), 4);
    }
    profile.print(std::cout);

    std::cout << "\nlink-farm suspects (LCC > 4x degree-class mean, degree >= 16): "
              << suspects.size() << "\n";
    Table table({"vertex", "degree", "LCC", "class mean"});
    for (std::size_t i = 0; i < std::min<std::size_t>(suspects.size(), 10); ++i) {
        table.row()
            .cell(suspects[i].vertex)
            .cell(suspects[i].degree)
            .cell(suspects[i].lcc, 4)
            .cell(suspects[i].bucket_mean, 4);
    }
    table.print(std::cout);
    return 0;
}
